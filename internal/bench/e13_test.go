package bench

import "testing"

// TestE13Smoke runs one batched and one unbatched cell at a single small
// payload and checks the acceptance claims hold on that pair: aggregation
// cuts modelled time >=2x, sends fewer wire messages than logical
// operations, and completes without probing.
func TestE13Smoke(t *testing.T) {
	unbatched := e13Cell(e13Series{nonBlocking: true, probeCompletion: true}, 16, 0)
	batched := e13Cell(e13Series{nonBlocking: true, batchOps: E13Batch}, 16, E13Batch)
	if !unbatched.Verified || !batched.Verified {
		t.Fatal("a cell left inconsistent target memory")
	}
	if un, ba := unbatched.Row.ModelUS, batched.Row.ModelUS; ba <= 0 || un < 2*ba {
		t.Errorf("batched issue %.1fus vs unbatched %.1fus: want >=2x reduction", ba, un)
	}
	if batched.Msgs >= batched.LogicalOps {
		t.Errorf("batched run sent %d wire messages for %d logical ops: no aggregation happened",
			batched.Msgs, batched.LogicalOps)
	}
	if batched.Batches == 0 {
		t.Error("batched run sent no aggregates")
	}
	if batched.FastPaths != int64(Fig2Origins) {
		t.Errorf("%d Complete fast paths, want %d (one per origin, no probes)",
			batched.FastPaths, Fig2Origins)
	}
}

// TestE13Registered: the experiment is reachable through the rmabench
// registry (ByName would run the full grid, so only the listing is
// checked here).
func TestE13Registered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "e13" {
			found = true
		}
	}
	if !found {
		t.Fatal("e13 missing from Names()")
	}
}
