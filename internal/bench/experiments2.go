package bench

import (
	"time"

	"mpi3rma/internal/armci"
	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/gasnet"
	"mpi3rma/internal/mpi2rma"
	"mpi3rma/internal/runtime"
)

// RunFig1 quantifies Figure 1's three MPI-2 synchronization methods
// against the strawman's single-call put: the per-epoch cost of moving one
// payload between two ranks under fence, PSCW, lock-unlock, and strawman
// blocking put (with and without a Complete).
func RunFig1() Result {
	res := Result{
		Name:  "fig1",
		Title: "Figure 1 / E6: synchronization cost per transfer, 2 ranks",
		SeriesOrder: []string{
			"strawman blocking put",
			"strawman put + complete",
			"mpi2 fence epoch",
			"mpi2 post-start-complete-wait",
			"mpi2 lock-unlock",
		},
	}
	const iters = 50
	for _, size := range Fig2Sizes {
		for _, series := range res.SeriesOrder {
			row := runFig1Cell(series, size, iters)
			row.Series = series
			res.Add(row)
		}
	}
	res.Notef("each row is the mean cost of one transfer epoch over %d iterations", iters)
	return res
}

// runFig1Cell measures one (mode, size) cell: rank 1 repeatedly moves size
// bytes to rank 0 under the given synchronization mode; the reported times
// are per iteration.
func runFig1Cell(series string, size, iters int) Row {
	w := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer w.Close()
	var meas measure
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		r2 := mpi2rma.Attach(p, mpi2rma.Options{})
		comm := p.Comm()
		region := p.Alloc(size)
		win, err := r2.WinCreate(comm, region)
		if err != nil {
			panic(err)
		}
		tm := e.Expose(region)
		encs := comm.Gather(0, tm.Encode())
		var flat []byte
		if comm.Rank() == 0 {
			for _, enc := range encs {
				flat = append(flat, enc...)
			}
		}
		flat = comm.Bcast(0, flat)
		tm0, err := core.DecodeTargetMem(flat[:len(flat)/2])
		if err != nil {
			panic(err)
		}
		src := p.Alloc(size)

		p.Barrier()
		start := time.Now()
		startVT := p.Now()
		for i := 0; i < iters; i++ {
			switch series {
			case "strawman blocking put":
				if p.Rank() == 1 {
					if _, err := e.Put(src, size, datatype.Byte, tm0, 0, size, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
						panic(err)
					}
				}
			case "strawman put + complete":
				if p.Rank() == 1 {
					if _, err := e.Put(src, size, datatype.Byte, tm0, 0, size, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
						panic(err)
					}
					if err := e.Complete(comm, 0); err != nil {
						panic(err)
					}
				}
			case "mpi2 fence epoch":
				if err := win.Fence(); err != nil {
					panic(err)
				}
				if p.Rank() == 1 {
					if err := win.Put(src, size, datatype.Byte, 0, 0, size, datatype.Byte); err != nil {
						panic(err)
					}
				}
				if err := win.Fence(); err != nil {
					panic(err)
				}
			case "mpi2 post-start-complete-wait":
				if p.Rank() == 0 {
					if err := win.Post([]int{1}); err != nil {
						panic(err)
					}
					if err := win.Wait(); err != nil {
						panic(err)
					}
				} else {
					if err := win.Start([]int{0}); err != nil {
						panic(err)
					}
					if err := win.Put(src, size, datatype.Byte, 0, 0, size, datatype.Byte); err != nil {
						panic(err)
					}
					if err := win.Complete(); err != nil {
						panic(err)
					}
				}
			case "mpi2 lock-unlock":
				if p.Rank() == 1 {
					if err := win.Lock(mpi2rma.LockShared, 0); err != nil {
						panic(err)
					}
					if err := win.Put(src, size, datatype.Byte, 0, 0, size, datatype.Byte); err != nil {
						panic(err)
					}
					if err := win.Unlock(0); err != nil {
						panic(err)
					}
				}
			}
		}
		if p.Rank() == 1 || series == "mpi2 fence epoch" || series == "mpi2 post-start-complete-wait" {
			meas.record(time.Since(start), p.Now()-startVT)
		}
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	row := meas.row("", size)
	row.WallNS /= float64(iters)
	row.ModelUS /= float64(iters)
	return row
}

// RunE7 compares the strawman with the ARMCI-like and GASNet-like layers
// (Section VI): contiguous put round, strided put round (where supported),
// and accumulate round (where supported). Unsupported cells are recorded
// with a NaN-free sentinel of -1 and called out in the support matrix.
func RunE7() Result {
	res := Result{
		Name:  "e7",
		Title: "E7: strawman vs ARMCI vs GASNet (Section VI)",
		SeriesOrder: []string{
			"strawman contiguous put",
			"armci contiguous put",
			"gasnet contiguous put",
			"strawman strided put",
			"armci strided put",
			"strawman accumulate",
			"armci accumulate",
		},
	}
	const iters = 50
	for _, size := range []int{64, 256, 1024} {
		for _, series := range res.SeriesOrder {
			row := runE7Cell(series, size, iters)
			row.Series = series
			res.Add(row)
		}
	}
	res.Notef("support matrix: accumulate — strawman yes (full op set), ARMCI yes (daxpy only), GASNet NO")
	res.Notef("support matrix: noncontiguous — strawman yes (datatypes), ARMCI yes (strided/vector), GASNet NO (extended API v1.8)")
	res.Notef("support matrix: blocking-unordered / per-subset completion — strawman only (paper Section VI)")
	return res
}

func runE7Cell(series string, size, iters int) Row {
	w := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer w.Close()
	var meas measure
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		ac := armci.Attach(p)
		gn := gasnet.Attach(p)
		comm := p.Comm()
		tms, _, err := ac.Malloc(comm, size*8)
		if err != nil {
			panic(err)
		}
		if _, err := gn.AttachSegment(comm, size*8); err != nil {
			panic(err)
		}
		src := p.Alloc(size * 8)
		nf64 := size / 8 // float64 elements for accumulates
		// Strided layout: size bytes as size/16 blocks of 16 bytes, every
		// other 16-byte slot.
		blocks := size / 16
		spec := armci.StridedSpec{Off: 0, Strides: []int{32}}
		counts := []int{blocks}
		vec := datatype.Vector(blocks, 16, 32, datatype.Byte)

		p.Barrier()
		start := time.Now()
		startVT := p.Now()
		if p.Rank() == 1 {
			for i := 0; i < iters; i++ {
				switch series {
				case "strawman contiguous put":
					if _, err := e.Put(src, size, datatype.Byte, tms[0], 0, size, datatype.Byte, 0, comm, core.AttrBlocking|core.AttrOrdering); err != nil {
						panic(err)
					}
				case "armci contiguous put":
					if err := ac.Put(src, 0, tms[0], 0, size, 0, comm); err != nil {
						panic(err)
					}
				case "gasnet contiguous put":
					if err := gn.Put(0, comm, 0, src, 0, size); err != nil {
						panic(err)
					}
				case "strawman strided put":
					if _, err := e.Put(src, 1, vec, tms[0], 0, 1, vec, 0, comm, core.AttrBlocking|core.AttrOrdering); err != nil {
						panic(err)
					}
				case "armci strided put":
					if err := ac.PutS(src, spec, tms[0], spec, 16, counts, 0, comm); err != nil {
						panic(err)
					}
				case "strawman accumulate":
					if _, err := e.Accumulate(core.AccSum, src, nf64, datatype.Float64, tms[0], 0, nf64, datatype.Float64, 0, comm, core.AttrBlocking|core.AttrAtomic); err != nil {
						panic(err)
					}
				case "armci accumulate":
					if err := ac.Acc(1.0, src, 0, tms[0], 0, nf64, 0, comm); err != nil {
						panic(err)
					}
				}
			}
			meas.record(time.Since(start), p.Now()-startVT)
		}
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	row := meas.row("", size)
	row.WallNS /= float64(iters)
	row.ModelUS /= float64(iters)
	return row
}

// RunE9 measures the datatype engine (requirement 7 and Section III-B3):
// contiguous vs strided vs indexed layouts of the same volume, and a
// big-endian (byte-swapping) target.
func RunE9() Result {
	res := Result{
		Name:  "e9",
		Title: "E9: noncontiguous datatypes and heterogeneous (big-endian) targets",
		SeriesOrder: []string{
			"contiguous float64",
			"vector (every other element)",
			"indexed (random gather)",
			"contiguous to big-endian target",
		},
	}
	const iters = 50
	for _, elems := range []int{16, 64, 256} {
		for _, series := range res.SeriesOrder {
			row := runE9Cell(series, elems, iters)
			row.Series = series
			res.Add(row)
		}
	}
	res.Notef("sizes are float64 element counts; wire volume is identical across layouts at each count")
	return res
}

func runE9Cell(series string, elems, iters int) Row {
	bigEndian := series == "contiguous to big-endian target"
	cfg := runtime.Config{Ranks: 2}
	if bigEndian {
		cfg.ByteOrder = func(rank int) datatype.ByteOrder {
			if rank == 0 {
				return datatype.BigEndian
			}
			return datatype.LittleEndian
		}
	}
	w := runtime.NewWorld(cfg)
	defer w.Close()

	var dt datatype.Type
	span := elems * 8
	switch series {
	case "vector (every other element)":
		dt = datatype.Vector(elems, 1, 2, datatype.Float64)
		span = elems * 16
	case "indexed (random gather)":
		blocklens := make([]int, elems)
		displs := make([]int, elems)
		for i := range displs {
			blocklens[i] = 1
			displs[i] = i*3 + (i % 2) // irregular but non-overlapping
		}
		dt = datatype.Indexed(blocklens, displs, datatype.Float64)
		span = (elems*3 + 2) * 8
	default:
		dt = datatype.Contiguous(elems, datatype.Float64)
	}

	var meas measure
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(span)
			p.Send(1, 0, tm.Encode())
			p.Barrier()
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := core.DecodeTargetMem(enc)
		if err != nil {
			panic(err)
		}
		src := p.Alloc(span)
		start := time.Now()
		startVT := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Put(src, 1, dt, tm, 0, 1, dt, 0, comm, core.AttrBlocking); err != nil {
				panic(err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			panic(err)
		}
		meas.record(time.Since(start), p.Now()-startVT)
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	row := meas.row("", elems)
	row.WallNS /= float64(iters)
	row.ModelUS /= float64(iters)
	return row
}

// RunE10 measures completion granularity (Section IV): after scattering
// puts to every rank, complete per-rank in a loop, with AllRanks in one
// call, or collectively.
func RunE10() Result {
	res := Result{
		Name:  "e10",
		Title: "E10: completion granularity — per-rank loop vs MPI_ALL_RANKS vs collective",
		SeriesOrder: []string{
			"loop Complete(r) over ranks",
			"Complete(ALL_RANKS)",
			"CompleteCollective",
		},
	}
	const putsPerTarget = 20
	for _, ranks := range []int{4, 8, 16} {
		for _, series := range res.SeriesOrder {
			row := runE10Cell(series, ranks, putsPerTarget)
			row.Series = series
			res.Add(row)
		}
	}
	res.Notef("size column is the world size; %d puts of 64B per target before completing", putsPerTarget)
	return res
}

func runE10Cell(series string, ranks, puts int) Row {
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer w.Close()
	var meas measure
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		comm := p.Comm()
		const size = 64
		tm, _ := e.ExposeNew(size * ranks)
		encs := comm.Gather(0, tm.Encode())
		var flat []byte
		if comm.Rank() == 0 {
			for _, enc := range encs {
				flat = append(flat, enc...)
			}
		}
		flat = comm.Bcast(0, flat)
		per := len(flat) / ranks
		tms := make([]core.TargetMem, ranks)
		for i := range tms {
			var err error
			tms[i], err = core.DecodeTargetMem(flat[i*per : (i+1)*per])
			if err != nil {
				panic(err)
			}
		}
		src := p.Alloc(size)
		p.Barrier()
		start := time.Now()
		startVT := p.Now()
		for t := 0; t < ranks; t++ {
			if t == p.Rank() {
				continue
			}
			for i := 0; i < puts; i++ {
				if _, err := e.Put(src, size, datatype.Byte, tms[t], p.Rank()*size, size, datatype.Byte, t, comm, core.AttrNone); err != nil {
					panic(err)
				}
			}
		}
		switch series {
		case "loop Complete(r) over ranks":
			for t := 0; t < ranks; t++ {
				if err := e.Complete(comm, t); err != nil {
					panic(err)
				}
			}
		case "Complete(ALL_RANKS)":
			if err := e.Complete(comm, core.AllRanks); err != nil {
				panic(err)
			}
		case "CompleteCollective":
			if err := e.CompleteCollective(comm); err != nil {
				panic(err)
			}
		}
		meas.record(time.Since(start), p.Now()-startVT)
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	return meas.row("", ranks)
}
