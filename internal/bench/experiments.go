package bench

import (
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
)

// RunE3 measures the ordering attribute on an *unordered* network
// (Section III-B: on networks without message ordering, the attribute
// "can still be guaranteed with a slight penalty"). Same workload as
// Figure 2; series with and without AttrOrdering, both on a scrambling
// network.
func RunE3() Result {
	res := Result{
		Name:  "e3",
		Title: "E3: ordering penalty on an unordered network (100 puts + 1 complete, 7 origins)",
		SeriesOrder: []string{
			"no attributes (unordered net)",
			"ordering (window=8)",
			"ordering (window=32)",
		},
	}
	type cell struct {
		series string
		attrs  core.Attr
		window int
	}
	cells := []cell{
		{res.SeriesOrder[0], core.AttrNone, 0},
		{res.SeriesOrder[1], core.AttrOrdering, 8},
		{res.SeriesOrder[2], core.AttrOrdering, 32},
	}
	for _, c := range cells {
		for _, size := range Fig2Sizes {
			window := c.window
			out := RunPutsComplete(PutsCompleteConfig{
				Origins:   Fig2Origins,
				Puts:      Fig2Puts,
				Size:      size,
				Attrs:     c.attrs,
				Mech:      serializer.MechThread,
				Unordered: true,
				WorldConfig: func(wc *runtime.Config) {
					if window > 0 {
						wc.ReorderWindow = window
					}
				},
			})
			row := out.Row
			row.Series = c.series
			row.Extra["held_ops"] = float64(out.HeldOps)
			res.Add(row)
		}
	}
	res.Notef("window = how many in-flight messages the network may scramble; held_ops = reorder-buffer work at the target")
	return res
}

// RunE4 measures remote completion when the network cannot report it
// (Section III-B: "on a network with no direct mechanism to check for
// remote completion ... remote completion may be guaranteed with a slight
// penalty"): hardware acknowledgements versus software echoes.
func RunE4() Result {
	res := Result{
		Name:        "e4",
		Title:       "E4: remote completion via hardware ACKs vs software echoes",
		SeriesOrder: []string{"remote complete (hardware acks)", "remote complete (software echo)"},
	}
	for _, soft := range []bool{false, true} {
		series := res.SeriesOrder[0]
		if soft {
			series = res.SeriesOrder[1]
		}
		for _, size := range Fig2Sizes {
			out := RunPutsComplete(PutsCompleteConfig{
				Origins:      Fig2Origins,
				Puts:         Fig2Puts,
				Size:         size,
				Attrs:        core.AttrRemoteComplete,
				Mech:         serializer.MechThread,
				SoftwareAcks: soft,
			})
			row := out.Row
			row.Series = series
			row.Extra["soft_acks"] = float64(out.SoftAcks)
			res.Add(row)
		}
	}
	return res
}

// RunE5 measures the non-cache-coherent target of Section III-B2: after
// the puts complete, the target must fence (invalidate its write-through
// scalar cache) before locally reading the deposited data — involvement
// the coherent machine never pays. The fence cost is modelled per
// invalidated line.
func RunE5() Result {
	res := Result{
		Name:        "e5",
		Title:       "E5: coherent vs non-cache-coherent target (target-side involvement)",
		SeriesOrder: []string{"coherent target", "non-coherent target"},
	}
	for _, size := range Fig2Sizes {
		for _, nonCoh := range []bool{false, true} {
			series := res.SeriesOrder[0]
			if nonCoh {
				series = res.SeriesOrder[1]
			}
			out := runE5Cell(size, nonCoh)
			out.Series = series
			res.Add(out)
		}
	}
	res.Notef("non-coherent rows include the target's fence/invalidate work; stale_reads counts reads that would have returned stale data without the fence")
	return res
}

// linInvalidateCost is the modelled per-cache-line invalidation cost at an
// SX-style target.
const lineInvalidateCost = 20 * time.Nanosecond

func runE5Cell(size int, nonCoherent bool) Row {
	w := runtime.NewWorld(runtime.Config{
		Ranks: Fig2Origins + 1,
		Coherence: func(rank int) memsim.Coherence {
			if nonCoherent && rank == 0 {
				return memsim.NonCoherentWriteThrough
			}
			return memsim.Coherent
		},
	})
	defer w.Close()
	var meas measure
	var staleWithoutFence, invalidated int64
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(size)
			enc := tm.Encode()
			for r := 1; r < p.Size(); r++ {
				p.Send(r, 0, enc)
			}
			// Prime the scalar cache so remote writes render it stale.
			_ = p.ReadLocal(region, 0, size)
			p.Barrier() // origins put between these barriers
			p.Barrier()
			// Demonstrate the hazard, then do it right: read (possibly
			// stale), fence, read again.
			_ = p.ReadLocal(region, 0, size)
			staleWithoutFence = p.Mem().StaleReads.Value()
			n := p.Mem().Fence()
			invalidated = int64(n)
			p.Advance(time.Duration(n) * lineInvalidateCost)
			_ = p.ReadLocal(region, 0, size)
			meas.record(0, p.Now())
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := core.DecodeTargetMem(enc)
		if err != nil {
			panic(err)
		}
		src := p.Alloc(size)
		p.Barrier()
		start := time.Now()
		startVT := p.Now()
		for i := 0; i < Fig2Puts; i++ {
			if _, err := e.Put(src, size, datatype.Byte, tm, 0, size, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
				panic(err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			panic(err)
		}
		meas.record(time.Since(start), p.Now()-startVT)
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	row := meas.row("", size)
	row.Extra["stale_reads"] = float64(staleWithoutFence)
	row.Extra["lines_invalidated"] = float64(invalidated)
	return row
}

// RunE8 is the serializer ablation (Section V-A's two serializers plus the
// progress fallback and the non-atomic baseline): the Figure 2 atomic
// workload under each mechanism.
func RunE8() Result {
	res := Result{
		Name:  "e8",
		Title: "E8: serializer ablation for the atomicity attribute",
		SeriesOrder: []string{
			"non-atomic baseline",
			"atomic: thread serializer",
			"atomic: progress (poll 50us)",
			"atomic: coarse lock",
		},
	}
	type cell struct {
		series string
		attrs  core.Attr
		mech   serializer.Mechanism
		poll   time.Duration
	}
	cells := []cell{
		{res.SeriesOrder[0], core.AttrNone, serializer.MechThread, 0},
		{res.SeriesOrder[1], core.AttrAtomic, serializer.MechThread, 0},
		{res.SeriesOrder[2], core.AttrAtomic, serializer.MechProgress, 50 * time.Microsecond},
		{res.SeriesOrder[3], core.AttrAtomic, serializer.MechCoarseLock, 0},
	}
	for _, c := range cells {
		for _, size := range Fig2Sizes {
			out := RunPutsComplete(PutsCompleteConfig{
				Origins:     Fig2Origins,
				Puts:        Fig2Puts,
				Size:        size,
				Attrs:       c.attrs,
				Mech:        c.mech,
				TargetPolls: c.poll,
			})
			row := out.Row
			row.Series = c.series
			row.Extra["lock_contended"] = float64(out.LockContended)
			res.Add(row)
		}
	}
	return res
}
