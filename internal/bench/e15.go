package bench

import (
	"encoding/binary"
	"fmt"
	"time"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

// E15 — overlap efficiency of event-driven completion (DESIGN.md §11).
//
// A ring of ranks runs a halo-exchange pipeline: every sweep each rank
// pushes an H-byte boundary record to both neighbours with notified puts,
// models `grain` nanoseconds of interior compute, folds the neighbours'
// values into a running accumulator, and repeats. The two series issue
// the SAME one-sided transfers and do the SAME compute; they differ only
// in when they wait:
//
//	blocking  — push, Complete toward both neighbours, barrier, THEN
//	            compute: communication and compute strictly alternate,
//	            the shape every pre-PR-6 caller was forced into.
//	pipelined — push into parity-indexed double ghost slots, compute
//	            WHILE the halos fly, then Select(OnApplied) on each
//	            neighbour's delivery counter: the event surface overlaps
//	            halo latency with compute and drops the per-sweep
//	            barrier entirely.
//
// Sweeping the compute grain moves the workload from communication-bound
// (grain 0: nothing to overlap) to compute-bound (large grain: all the
// halo latency hides). The efficiency column reports the fraction of the
// ideal overlap window actually won:
//
//	efficiency = (blocking - pipelined) / min(total compute, comm-only blocking time)
//
// Acceptance (EXPERIMENTS.md): pipelined modelled time is strictly below
// blocking at every nonzero grain — overlap efficiency > 0 — and both
// variants fold byte-identical accumulator states, proving the parity
// ghosts + Select discipline delivers exactly the values the barriers
// did.

// E15Ranks is the ring size.
const E15Ranks = 4

// E15Sweeps is the number of halo-exchange iterations per run.
const E15Sweeps = 40

// E15Halo is the boundary record size in bytes (the first 8 carry the
// folded value; the rest model the real surface data riding along).
const E15Halo = 4096

// E15Grains sweeps the modelled interior-compute time per sweep, in
// nanoseconds. Grain 0 is the communication-bound edge used as the
// comm-only reference; the overlap claim covers the nonzero grains.
var E15Grains = []vtime.Duration{0, 5_000, 20_000, 80_000, 320_000}

// e15Outcome is one variant's run: the slowest rank's virtual finish
// time, host wall time, and every rank's final accumulator (the
// byte-identical check).
type e15Outcome struct {
	model vtime.Time
	wall  time.Duration
	accs  []int64
}

// runE15Halo drives one variant of the halo pipeline.
func runE15Halo(pipelined bool, grain vtime.Duration) e15Outcome {
	var out e15Outcome
	start := time.Now()
	world := runtime.NewWorld(runtime.Config{Ranks: E15Ranks})
	defer world.Close()

	// Ghost layout per neighbour side: one slot blocking, two
	// parity-indexed slots pipelined. Left-side slots first.
	slots := 1
	if pipelined {
		slots = 2
	}
	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithEvents(4*E15Sweeps))
		comm := p.Comm()
		me := p.Rank()
		left := (me + E15Ranks - 1) % E15Ranks
		right := (me + 1) % E15Ranks

		tms, region, err := s.ExposeCollective(2 * slots * E15Halo)
		if err != nil {
			panic(err)
		}
		// ghost(side, parity) is the byte offset of a ghost slot; side 0
		// receives from the left neighbour, side 1 from the right.
		ghost := func(side, parity int) int { return (side*slots + parity) * E15Halo }

		buf := p.Alloc(E15Halo)
		rec := make([]byte, E15Halo)
		// push sends this rank's current value into one neighbour's ghost
		// slot: into the left neighbour's right-side slot and the right
		// neighbour's left-side slot. The pipelined discipline keeps two
		// halos to the same neighbour in flight, and OnApplied thresholds
		// count applications without naming which op applied — so its
		// pushes carry Ordering, turning "count reached k" into "the
		// first k pushes landed". The blocking variant's complete+barrier
		// never leaves two in flight, so it skips that cost.
		var pushOpts []rma.OpOption
		if pipelined {
			pushOpts = []rma.OpOption{rma.WithOrdering()}
		}
		push := func(val uint64, parity int) {
			binary.LittleEndian.PutUint64(rec, val)
			p.WriteLocal(buf, 0, rec)
			for _, dst := range []struct{ nb, side int }{{left, 1}, {right, 0}} {
				req, err := s.PutNotify(buf, E15Halo, rma.Byte, tms[dst.nb], ghost(dst.side, parity), pushOpts...)
				if err != nil {
					panic(err)
				}
				req.OnDone(func(err error) {
					if err != nil {
						panic(err)
					}
				})
			}
		}
		read := func(side, parity int) uint64 {
			return binary.LittleEndian.Uint64(p.ReadLocal(region, ghost(side, parity), 8))
		}
		fold := func(acc, lv, rv uint64, sweep int) uint64 {
			return acc*31 + lv + rv + uint64(sweep)
		}

		acc := uint64(me + 1)
		if !pipelined {
			for sweep := 0; sweep < E15Sweeps; sweep++ {
				push(acc, 0)
				if err := s.Complete(left, right); err != nil {
					panic(err)
				}
				comm.Barrier() // every ghost everywhere is fresh
				p.Advance(grain)
				acc = fold(acc, read(0, 0), read(1, 0), sweep)
				comm.Barrier() // no one overwrites a ghost still being read
			}
		} else {
			// Seed the parity-0 slots with the initial value, then keep
			// one sweep of halos in flight: compute rides over their
			// latency, and Select(OnApplied) — cumulative delivery count
			// sweep+1, seed included — is the only wait.
			push(acc, 0)
			for sweep := 0; sweep < E15Sweeps; sweep++ {
				q := sweep % 2
				p.Advance(grain)
				for _, nb := range []int{left, right} {
					if _, _, err := s.Select(rma.OnApplied(nb, int64(sweep+1))); err != nil {
						panic(err)
					}
				}
				acc = fold(acc, read(0, q), read(1, q), sweep)
				if sweep < E15Sweeps-1 {
					push(acc, 1-q)
				}
			}
			if err := s.Complete(left, right); err != nil {
				panic(err)
			}
		}

		finish := comm.AllreduceInt64(runtime.OpMax, int64(p.Now()))
		accs := comm.AllgatherInt64(int64(acc))
		if me == 0 {
			out.model = vtime.Time(finish)
			out.accs = accs
		}
	})
	if err != nil {
		panic(err)
	}
	out.wall = time.Since(start)
	return out
}

// RunE15 sweeps compute grain against completion discipline.
func RunE15() Result {
	res := Result{
		Name: "e15",
		Title: fmt.Sprintf("E15: compute/communication overlap via event-driven completion (%d-rank ring, %d sweeps, %d B halos)",
			E15Ranks, E15Sweeps, E15Halo),
	}
	const blockName = "blocking (complete+barrier, then compute)"
	const pipeName = "pipelined (compute while halos fly, Select)"
	res.SeriesOrder = []string{blockName, pipeName}

	type cell struct{ block, pipe e15Outcome }
	cells := make([]cell, len(E15Grains))
	for i, g := range E15Grains {
		cells[i] = cell{runE15Halo(false, g), runE15Halo(true, g)}
	}
	// Comm-only reference: blocking at grain 0 is the pure
	// communication+synchronization cost of one run.
	commOnly := float64(cells[0].block.model)

	add := func(series string, grain vtime.Duration, out e15Outcome, eff float64) {
		row := Row{
			Series:  series,
			Size:    int(grain) / 1000, // column: compute grain in us
			WallNS:  float64(out.wall.Nanoseconds()),
			ModelUS: float64(out.model) / 1e3,
			Extra:   map[string]float64{},
		}
		if eff >= 0 {
			row.Extra["overlap_eff_pct"] = 100 * eff
		}
		res.Add(row)
	}
	for i, g := range E15Grains {
		c := cells[i]
		add(blockName, g, c.block, -1)
		eff := -1.0
		if g > 0 {
			compute := float64(E15Sweeps) * float64(g)
			window := compute
			if commOnly < window {
				window = commOnly
			}
			if window > 0 {
				eff = (float64(c.block.model) - float64(c.pipe.model)) / window
			}
		}
		add(pipeName, g, c.pipe, eff)
	}

	// Shape notes: the acceptance claims, self-validating.
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		res.Notef(status+": "+format, args...)
	}
	for i, g := range E15Grains {
		c := cells[i]
		same := len(c.block.accs) == len(c.pipe.accs) && len(c.block.accs) > 0
		if same {
			for r := range c.block.accs {
				same = same && c.block.accs[r] == c.pipe.accs[r]
			}
		}
		check(same, "grain %dus: pipelined accumulators byte-identical to blocking", int(g)/1000)
		if g == 0 {
			continue
		}
		win := float64(c.block.model) - float64(c.pipe.model)
		check(win > 0, "grain %dus: pipelined modelled time strictly below blocking (%.1fus < %.1fus, overlap efficiency > 0)",
			int(g)/1000, float64(c.pipe.model)/1e3, float64(c.block.model)/1e3)
	}
	res.Notef("comm-only reference (blocking, grain 0): %.1fus; efficiency = won time / min(total compute, comm-only); "+
		"values above 100%% mean the event surface also eliminated synchronization the blocking shape paid (the per-sweep barriers), "+
		"not just overlapped the halos", commOnly/1e3)
	return res
}
