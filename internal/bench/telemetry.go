package bench

import (
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mpi3rma/internal/core"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
)

// telemetryOn is the harness-wide telemetry switch. When set (rmabench
// -metrics / -trace), every experiment cell enables the metrics registry
// and a trace ring on each rank it builds, and the experiment Result
// carries a merged TelemetrySummary sidecar.
var telemetryOn atomic.Bool

// SetTelemetry switches harness telemetry collection on or off.
func SetTelemetry(on bool) { telemetryOn.Store(on) }

// TelemetrySummary is an experiment's machine-readable telemetry sidecar:
// the metrics snapshot merged across every rank (and every cell of a
// sweep), plus the cross-rank protocol timeline and the per-operation
// spans reconstructed from it (from the last cell that recorded events —
// one cell's timeline is enough to follow an operation end to end, and
// keeping all of a sweep's events would dwarf the measurements).
type TelemetrySummary struct {
	Metrics telemetry.Snapshot     `json:"metrics"`
	Events  []telemetry.TraceEvent `json:"events,omitempty"`
	Spans   []telemetry.Span       `json:"spans,omitempty"`
}

// telemetryCollector gathers one world's per-rank registries and trace
// rings. A nil collector (telemetry off) is valid and does nothing, so
// cell runners call attach/summary unconditionally.
type telemetryCollector struct {
	mu    sync.Mutex
	regs  map[int]*telemetry.Registry
	rings map[int]*trace.Ring
}

// newCollector returns a collector, or nil when telemetry is off.
func newCollector() *telemetryCollector {
	if !telemetryOn.Load() {
		return nil
	}
	return &telemetryCollector{
		regs:  make(map[int]*telemetry.Registry),
		rings: make(map[int]*trace.Ring),
	}
}

// attach enables telemetry and tracing on one rank's engine and records
// the handles for the post-run merge. Safe to call from the world's rank
// goroutines concurrently.
func (c *telemetryCollector) attach(rank int, e *core.Engine) {
	if c == nil {
		return
	}
	reg := e.EnableTelemetry(nil)
	if e.Tracer() == nil {
		e.SetTracer(trace.New(0))
	}
	c.mu.Lock()
	c.regs[rank] = reg
	c.rings[rank] = e.Tracer()
	c.mu.Unlock()
}

// summary merges the attached ranks into one TelemetrySummary. The net.*
// counters alias world-global cells that every rank's registry sees, so
// they are taken from one rank only; everything else sums across ranks.
func (c *telemetryCollector) summary() *TelemetrySummary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ranks := make([]int, 0, len(c.regs))
	for r := range c.regs {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var sum TelemetrySummary
	for i, r := range ranks {
		snap := c.regs[r].Snapshot()
		if i > 0 {
			for name := range snap.Counters {
				if strings.HasPrefix(name, "net.") {
					delete(snap.Counters, name)
				}
			}
		}
		sum.Metrics.Merge(snap)
	}
	perRank := make(map[int][]trace.Event, len(c.rings))
	for r, ring := range c.rings {
		perRank[r] = ring.Snapshot()
	}
	sum.Events = telemetry.Timeline(perRank)
	sum.Spans = telemetry.Spans(sum.Events)
	return &sum
}

// absorbTelemetry folds one cell's summary into the experiment's sidecar:
// metrics accumulate across cells, the timeline is replaced so the sidecar
// ends up with the last recorded cell's events and spans.
func (r *Result) absorbTelemetry(t *TelemetrySummary) {
	if t == nil {
		return
	}
	if r.Telemetry == nil {
		r.Telemetry = &TelemetrySummary{}
	}
	r.Telemetry.Metrics.Merge(t.Metrics)
	if len(t.Events) > 0 {
		r.Telemetry.Events = t.Events
		r.Telemetry.Spans = t.Spans
	}
}

// noteTelemetry appends the latency histogram percentiles (virtual-time
// nanoseconds, from the fixed-bucket stats.Histogram) to the experiment
// notes, so the human-readable report carries the same percentiles the
// JSON sidecar does.
func (r *Result) noteTelemetry() {
	if r.Telemetry == nil || len(r.Telemetry.Metrics.Histograms) == 0 {
		return
	}
	names := make([]string, 0, len(r.Telemetry.Metrics.Histograms))
	for n := range r.Telemetry.Metrics.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.Telemetry.Metrics.Histograms[n]
		r.Notef("telemetry %s: count=%d p50<=%dns p99<=%dns max=%dns (vtime)",
			n, h.Count, h.Quantile(0.5), h.Quantile(0.99), h.Max)
	}
}

// WriteMetricsJSON emits the experiment's merged metrics snapshot as
// indented JSON. An experiment run without telemetry writes an empty
// snapshot rather than failing, so pipelines need no conditionals.
func (r *Result) WriteMetricsJSON(w io.Writer) error {
	if r.Telemetry == nil {
		return telemetry.Snapshot{}.WriteJSON(w)
	}
	return r.Telemetry.Metrics.WriteJSON(w)
}

// WriteTraceJSON emits the experiment's trace sidecar (merged timeline
// plus reconstructed spans) as indented JSON.
func (r *Result) WriteTraceJSON(w io.Writer) error {
	if r.Telemetry == nil {
		return telemetry.WriteTraceJSON(w, nil)
	}
	return telemetry.WriteTraceJSON(w, r.Telemetry.Events)
}

// CriticalPath decomposes the experiment's recorded timeline into the
// per-stage critical-path report (see telemetry.AnalyzeCriticalPath).
// An experiment run without telemetry yields an empty report.
func (r *Result) CriticalPath() *telemetry.CriticalPathReport {
	if r.Telemetry == nil {
		return telemetry.AnalyzeCriticalPath(nil)
	}
	return telemetry.AnalyzeCriticalPath(r.Telemetry.Events)
}

// WriteCritPathJSON emits the experiment's critical-path stage breakdown
// as indented JSON (the rmabench -critpath sidecar).
func (r *Result) WriteCritPathJSON(w io.Writer) error {
	return r.CriticalPath().WriteJSON(w)
}
