package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"mpi3rma/dht"
	"mpi3rma/dht/queue"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

// E16 — the RMA-backed data-structure service layer under closed-loop
// load (DESIGN.md §15).
//
// Seven server ranks expose the stripes of one global open-addressing
// hash table; seven client ranks run a closed loop against it — each
// client issues its next request only after the previous one completed,
// the shape a key/value front-end actually has. Keys are drawn from a
// Zipf distribution (s = 1.1), so a handful of hot keys concentrate
// traffic on a few buckets and the per-bucket lock/version protocol is
// exercised under real skew, not uniform load. The read/write mix is the
// swept column: 90/10 is the classic serving mix, 50/50 the
// write-heavy edge where every other request takes the full
// claim-CAS / payload-put / unlock-put bucket transaction.
//
// A second series pushes tasks through the global MPMC queue — seven
// producers fetch-add tickets while seven consumers drain, the
// work-distribution half of the service layer — so the one report covers
// both structures.
//
// Reported per mix: closed-loop throughput over modelled time, request
// latency p50/p99 from the dht latency histograms merged across clients,
// and per-stripe contention (lock retries + lost claims, by stripe) —
// the skew made visible. A final small traced cell decomposes the
// request path into protocol stages (the critical-path footer), without
// requiring the harness-wide telemetry switch.
//
// Acceptance (EXPERIMENTS.md): the closed loop completes at least one
// million requests across at least seven server stripes; every client
// request completes (histogram count equals requests issued, no misses
// on the preloaded key space); p99 >= p50 > 0; the queue drains every
// produced task exactly once (count and checksum agree across sides).

// E16Servers is the number of ranks exposing table stripes.
const E16Servers = 7

// E16Clients is the number of closed-loop client ranks.
const E16Clients = 7

// E16Buckets is the per-server stripe size in buckets.
const E16Buckets = 4096

// E16ValueSize is the payload size per key in bytes.
const E16ValueSize = 8

// E16Keys is the preloaded key-space size; Zipf draws stay inside it so
// the loop never misses.
const E16Keys = 16384

// E16PerClient is the number of closed-loop requests each client issues
// per mix cell: 7 clients x 2 mixes x 75k = 1.05M total requests.
const E16PerClient = 75_000

// E16ZipfS is the Zipf skew parameter (s > 1; larger is more skewed).
const E16ZipfS = 1.1

// E16ReadPcts sweeps the read share of the request mix.
var E16ReadPcts = []int{90, 50}

// E16QueuePerProducer is the task count each producer pushes through the
// queue series. The single-owner funnel prices every ticket, poll, and
// handoff at one rank, so this series is sized an order of magnitude
// below the DHT loop — it measures the funnel, not the fabric.
const E16QueuePerProducer = 1_000

// E16QueueSlots is the queue ring size; far fewer slots than in-flight
// tasks, so producers feel backpressure and wrap the ring many times.
const E16QueueSlots = 64

// E16QueueSlotSize is the task payload size in bytes.
const E16QueueSlotSize = 16

// E16TracedPerClient sizes the critical-path footer cell: big enough for
// stable stage shares, small enough that the trace ring holds the
// timeline.
const E16TracedPerClient = 300

// e16Value derives a deterministic value payload for (key, writer
// version), so overwrites change bytes and readers can sanity-check
// length.
func e16Value(key, version int) []byte {
	b := make([]byte, E16ValueSize)
	binary.LittleEndian.PutUint64(b, uint64(key)*1_000_003+uint64(version))
	return b
}

// e16ServeOutcome is one mix cell: slowest-rank modelled loop time, host
// wall time, merged client latency snapshot, per-stripe contention and
// operation counters summed across clients, and — for the traced cell —
// the critical-path report.
type e16ServeOutcome struct {
	model vtime.Time
	wall  time.Duration
	lat   stats.HistogramSnapshot
	cont  []int64
	agg   dht.Stats
	crit  *telemetry.CriticalPathReport
	tel   *TelemetrySummary
}

// runE16Serve drives one closed-loop mix cell. traced forces a
// telemetry collector regardless of the harness switch, so the
// critical-path footer exists in every report.
func runE16Serve(readPct, perClient int, traced bool) e16ServeOutcome {
	var out e16ServeOutcome
	start := time.Now()
	ranks := E16Servers + E16Clients
	world := runtime.NewWorld(runtime.Config{Ranks: ranks, Seed: int64(1600 + readPct)})
	defer world.Close()

	col := newCollector()
	if traced && col == nil {
		col = &telemetryCollector{
			regs:  make(map[int]*telemetry.Registry),
			rings: make(map[int]*trace.Ring),
		}
	}
	lats := make([]stats.HistogramSnapshot, ranks)
	conts := make([][]int64, ranks)
	ops := make([]dht.Stats, ranks)
	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		col.attach(p.Rank(), s.Engine())
		m, err := dht.Open(s,
			dht.WithServers(E16Servers),
			dht.WithBuckets(E16Buckets),
			dht.WithValueSize(E16ValueSize))
		if err != nil {
			panic(err)
		}
		comm := p.Comm()
		me := p.Rank()

		// Preload: clients stripe the key space between them so every
		// Zipf draw hits an existing key and the loop measures serving,
		// not cold inserts.
		if me >= E16Servers {
			for k := me - E16Servers; k < E16Keys; k += E16Clients {
				if err := m.Put(int64(k), e16Value(k, 0)); err != nil {
					panic(err)
				}
			}
		}
		p.Barrier()
		m.Latency().Reset()
		preload := m.Stats()

		t0 := p.Now()
		if me >= E16Servers {
			rng := rand.New(rand.NewSource(int64(7919*me + readPct)))
			zipf := rand.NewZipf(rng, E16ZipfS, 1, uint64(E16Keys-1))
			for i := 0; i < perClient; i++ {
				key := int64(zipf.Uint64())
				if rng.Intn(100) < readPct {
					v, ok, err := m.Get(key)
					if err != nil {
						panic(err)
					}
					if !ok || len(v) != E16ValueSize {
						panic("e16: preloaded key missing or torn")
					}
				} else {
					if err := m.Put(key, e16Value(int(key), i+1)); err != nil {
						panic(err)
					}
				}
			}
		}
		loop := comm.AllreduceInt64(runtime.OpMax, int64(p.Now())-int64(t0))

		lats[me] = m.Latency().Snapshot()
		conts[me] = m.StripeContention()
		st := m.Stats()
		// Counters accumulate from Open; subtract the preload phase so
		// the report describes the measured loop alone.
		ops[me] = dht.Stats{
			Gets:        st.Gets - preload.Gets,
			Puts:        st.Puts - preload.Puts,
			Misses:      st.Misses - preload.Misses,
			ProbeSteps:  st.ProbeSteps - preload.ProbeSteps,
			LockRetries: st.LockRetries - preload.LockRetries,
			CASRaces:    st.CASRaces - preload.CASRaces,
		}
		if me == 0 {
			out.model = vtime.Time(loop)
		}
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	out.wall = time.Since(start)
	out.cont = make([]int64, E16Servers)
	for r := E16Servers; r < ranks; r++ {
		out.lat.Merge(lats[r])
		for i, c := range conts[r] {
			out.cont[i] += c
		}
		out.agg.Gets += ops[r].Gets
		out.agg.Puts += ops[r].Puts
		out.agg.Misses += ops[r].Misses
		out.agg.ProbeSteps += ops[r].ProbeSteps
		out.agg.LockRetries += ops[r].LockRetries
		out.agg.CASRaces += ops[r].CASRaces
	}
	out.tel = col.summary()
	if traced && out.tel != nil {
		out.crit = telemetry.AnalyzeCriticalPath(out.tel.Events)
	}
	return out
}

// e16QueueOutcome is the task-queue series: modelled drain time, wall
// time, merged per-task handoff latencies, producer/consumer poll
// counters, and the count/checksum agreement proof.
type e16QueueOutcome struct {
	model                  vtime.Time
	wall                   time.Duration
	lat                    stats.HistogramSnapshot
	produced, consumed     int64
	prodSum, consSum       int64
	prodPolls, consPolls   int64
	enqueueLat, dequeueLat stats.HistogramSnapshot
}

// runE16Queue pushes E16QueuePerProducer tasks per producer through the
// global queue: ranks [E16Servers, ranks) produce, ranks [0, E16Servers)
// consume, rank 0 owns the ring.
func runE16Queue(perProd int) e16QueueOutcome {
	var out e16QueueOutcome
	start := time.Now()
	ranks := E16Servers + E16Clients
	world := runtime.NewWorld(runtime.Config{Ranks: ranks, Seed: 1699})
	defer world.Close()

	enqLats := make([]stats.HistogramSnapshot, ranks)
	deqLats := make([]stats.HistogramSnapshot, ranks)
	sums := make([]int64, ranks)
	counts := make([]int64, ranks)
	polls := make([]int64, ranks)
	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		q, err := queue.New(s, 0, E16QueueSlots, E16QueueSlotSize)
		if err != nil {
			panic(err)
		}
		comm := p.Comm()
		me := p.Rank()
		var hist stats.Histogram
		var sum, count int64
		p.Barrier()
		t0 := p.Now()
		if me >= E16Servers {
			task := make([]byte, E16QueueSlotSize)
			for i := 0; i < perProd; i++ {
				binary.LittleEndian.PutUint64(task, uint64(me)<<32|uint64(i))
				binary.LittleEndian.PutUint64(task[8:], uint64(me*1_000_003+i))
				before := p.Now()
				if err := q.Enqueue(task); err != nil {
					panic(err)
				}
				hist.Observe(int64(p.Now() - before))
				sum += int64(binary.LittleEndian.Uint64(task)) + int64(binary.LittleEndian.Uint64(task[8:]))
				count++
			}
		} else {
			for i := 0; i < perProd; i++ {
				before := p.Now()
				task, err := q.Dequeue()
				if err != nil {
					panic(err)
				}
				hist.Observe(int64(p.Now() - before))
				sum += int64(binary.LittleEndian.Uint64(task)) + int64(binary.LittleEndian.Uint64(task[8:]))
				count++
			}
		}
		drain := comm.AllreduceInt64(runtime.OpMax, int64(p.Now())-int64(t0))
		st := q.Stats()
		if me >= E16Servers {
			enqLats[me] = hist.Snapshot()
			polls[me] = st.ProducerPolls
		} else {
			deqLats[me] = hist.Snapshot()
			polls[me] = st.ConsumerPolls
		}
		sums[me] = sum
		counts[me] = count
		if me == 0 {
			out.model = vtime.Time(drain)
		}
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	out.wall = time.Since(start)
	for r := 0; r < ranks; r++ {
		if r >= E16Servers {
			out.enqueueLat.Merge(enqLats[r])
			out.produced += counts[r]
			out.prodSum += sums[r]
			out.prodPolls += polls[r]
		} else {
			out.dequeueLat.Merge(deqLats[r])
			out.consumed += counts[r]
			out.consSum += sums[r]
			out.consPolls += polls[r]
		}
	}
	out.lat.Merge(out.enqueueLat)
	out.lat.Merge(out.dequeueLat)
	return out
}

// e16Throughput converts a completed-request count over a modelled
// duration into thousands of requests per modelled second.
func e16Throughput(requests int64, model vtime.Time) float64 {
	if model <= 0 {
		return 0
	}
	return float64(requests) / (float64(model) / 1e9) / 1e3
}

// RunE16 sweeps the read/write mix over the DHT closed loop, runs the
// queue drain, and appends the traced critical-path footer.
func RunE16() Result {
	res := Result{
		Name: "e16",
		Title: fmt.Sprintf("E16: RMA data-structure service layer under closed-loop load (%d servers x %d clients, Zipf s=%.1f over %d keys, %d req/client/mix; queue: %d producers x %d tasks)",
			E16Servers, E16Clients, E16ZipfS, E16Keys, E16PerClient, E16Clients, E16QueuePerProducer),
	}
	const serveName = "dht closed loop (col: read %)"
	const queueName = "task queue drain (col: tasks/producer /1k)"
	res.SeriesOrder = []string{serveName, queueName}

	var totalRequests int64
	type cell struct {
		pct int
		out e16ServeOutcome
	}
	cells := make([]cell, 0, len(E16ReadPcts))
	for _, pct := range E16ReadPcts {
		out := runE16Serve(pct, E16PerClient, false)
		cells = append(cells, cell{pct, out})
		totalRequests += out.lat.Count

		var contTotal, contMax int64
		for _, c := range out.cont {
			contTotal += c
			if c > contMax {
				contMax = c
			}
		}
		row := Row{
			Series:  serveName,
			Size:    pct,
			WallNS:  float64(out.wall.Nanoseconds()),
			ModelUS: float64(out.model) / 1e3,
			Extra: map[string]float64{
				"kreq_s":  e16Throughput(out.lat.Count, out.model),
				"p50_us":  float64(out.lat.Quantile(0.50)) / 1e3,
				"p99_us":  float64(out.lat.Quantile(0.99)) / 1e3,
				"retries": float64(out.agg.LockRetries + out.agg.CASRaces),
			},
		}
		if contTotal > 0 {
			row.Extra["hot_stripe_pct"] = 100 * float64(contMax) / float64(contTotal)
		}
		res.Add(row)
		res.absorbTelemetry(out.tel)

		res.Notef("mix %d/%d: stripe contention (lock retries + lost claims, stripes 0..%d): %v",
			pct, 100-pct, E16Servers-1, out.cont)
		res.Notef("mix %d/%d: %d gets + %d puts, %d probe steps, %d lock retries, %d claim races",
			pct, 100-pct, out.agg.Gets, out.agg.Puts, out.agg.ProbeSteps, out.agg.LockRetries, out.agg.CASRaces)
	}

	qout := runE16Queue(E16QueuePerProducer)
	res.Add(Row{
		Series:  queueName,
		Size:    E16QueuePerProducer / 1000,
		WallNS:  float64(qout.wall.Nanoseconds()),
		ModelUS: float64(qout.model) / 1e3,
		Extra: map[string]float64{
			"ktask_s":    e16Throughput(qout.consumed, qout.model),
			"p50_us":     float64(qout.lat.Quantile(0.50)) / 1e3,
			"p99_us":     float64(qout.lat.Quantile(0.99)) / 1e3,
			"prod_polls": float64(qout.prodPolls),
			"cons_polls": float64(qout.consPolls),
		},
	})
	res.Notef("queue: enqueue p50/p99 %d/%dns, dequeue p50/p99 %d/%dns (vtime); %d producer polls, %d consumer polls",
		qout.enqueueLat.Quantile(0.50), qout.enqueueLat.Quantile(0.99),
		qout.dequeueLat.Quantile(0.50), qout.dequeueLat.Quantile(0.99),
		qout.prodPolls, qout.consPolls)

	// Shape notes: the acceptance claims, self-validating.
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		res.Notef(status+": "+format, args...)
	}
	check(totalRequests >= 1_000_000 && E16Servers >= 7,
		"closed loop completed %d requests (>=1M) across %d server stripes (>=7)", totalRequests, E16Servers)
	for _, c := range cells {
		want := int64(E16Clients) * E16PerClient
		check(c.out.lat.Count == want && c.out.agg.Misses == 0,
			"mix %d/%d: every request completed (%d/%d), zero misses on the preloaded key space",
			c.pct, 100-c.pct, c.out.lat.Count, want)
		p50, p99 := c.out.lat.Quantile(0.50), c.out.lat.Quantile(0.99)
		check(p99 >= p50 && p50 > 0,
			"mix %d/%d: latency percentiles well-formed (p50 %dns <= p99 %dns)", c.pct, 100-c.pct, p50, p99)
		var busy int
		for _, n := range c.out.cont {
			if n > 0 {
				busy++
			}
		}
		check(busy > 0, "mix %d/%d: Zipf skew surfaced bucket contention (%d/%d stripes contended)",
			c.pct, 100-c.pct, busy, E16Servers)
	}
	check(qout.produced == qout.consumed && qout.prodSum == qout.consSum && qout.produced == int64(E16Clients)*E16QueuePerProducer,
		"queue drained every task exactly once (%d produced, %d consumed, checksums agree)", qout.produced, qout.consumed)

	// Critical-path footer: a small traced rerun of the 90/10 mix
	// decomposes one request path into protocol stages, independent of
	// the harness telemetry switch.
	traced := runE16Serve(90, E16TracedPerClient, true)
	if rep := traced.crit; rep != nil && rep.Spans > 0 && rep.TotalVTime > 0 {
		stages := ""
		for _, st := range rep.Stages {
			if stages != "" {
				stages += ", "
			}
			stages += fmt.Sprintf("%s %.0f%%", st.Stage, 100*float64(st.Total)/float64(rep.TotalVTime))
		}
		res.Notef("critical path (traced 90/10 cell, %d client requests, %d spans): %s; end-to-end p50 %dns p99 %dns",
			E16Clients*E16TracedPerClient, rep.Spans, stages, rep.EndToEnd.P50, rep.EndToEnd.P99)
	} else {
		res.Notef("FAIL: traced cell produced no critical-path spans")
	}
	res.noteTelemetry()
	return res
}
