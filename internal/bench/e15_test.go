package bench

import (
	"strings"
	"testing"
)

// TestE15Smoke runs one blocking/pipelined pair at a single compute grain
// and checks the acceptance shape on that cell: the two variants fold
// byte-identical accumulator states, and the pipelined run's modelled
// time is strictly below blocking — overlap efficiency > 0.
func TestE15Smoke(t *testing.T) {
	const grain = 20_000 // 20us of interior compute per sweep
	block := runE15Halo(false, grain)
	pipe := runE15Halo(true, grain)
	if len(block.accs) != E15Ranks || len(pipe.accs) != E15Ranks {
		t.Fatalf("accumulator gather incomplete: blocking %d, pipelined %d", len(block.accs), len(pipe.accs))
	}
	for r := range block.accs {
		if block.accs[r] != pipe.accs[r] {
			t.Errorf("rank %d accumulator diverged: blocking %d, pipelined %d", r, block.accs[r], pipe.accs[r])
		}
	}
	if block.model <= 0 || pipe.model <= 0 {
		t.Fatalf("no model time reported (blocking %d, pipelined %d)", block.model, pipe.model)
	}
	if pipe.model >= block.model {
		t.Errorf("pipelined model time %dns not below blocking %dns — no overlap won", pipe.model, block.model)
	}
}

// TestE15Notes runs the full sweep and requires every self-validating
// note to PASS — the overlap claim at each nonzero grain plus the
// byte-identical check at every grain.
func TestE15Notes(t *testing.T) {
	if testing.Short() {
		t.Skip("full E15 sweep in -short mode")
	}
	res := RunE15()
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "FAIL") {
			t.Errorf("self-check failed: %s", n)
		}
	}
	if len(res.Rows) != 2*len(E15Grains) {
		t.Errorf("%d rows, want %d", len(res.Rows), 2*len(E15Grains))
	}
}

// TestE15Registered: the experiment is reachable through the rmabench
// registry.
func TestE15Registered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "e15" {
			found = true
		}
	}
	if !found {
		t.Fatal("e15 missing from Names()")
	}
}
