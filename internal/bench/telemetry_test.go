package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpi3rma/internal/serializer"
)

// TestTelemetrySidecar runs one small Figure-2 cell with harness telemetry
// on and validates the machine-readable sidecar end to end: merged
// counters reconcile with the workload, the metrics and trace JSON
// exporters emit parseable documents, and the trace reconstructs at least
// one cross-rank span that reaches an apply at the target.
func TestTelemetrySidecar(t *testing.T) {
	SetTelemetry(true)
	defer SetTelemetry(false)

	const origins, puts = 3, 10
	out := RunPutsComplete(PutsCompleteConfig{
		Origins: origins,
		Puts:    puts,
		Size:    64,
		Mech:    serializer.MechThread,
	})
	if out.Telemetry == nil {
		t.Fatal("telemetry enabled but cell produced no summary")
	}
	counters := out.Telemetry.Metrics.Counters
	if got := counters["ops.issued"]; got != origins*puts {
		t.Errorf("merged ops.issued = %d, want %d", got, origins*puts)
	}
	if got := counters["ops.applied"]; got != origins*puts {
		t.Errorf("merged ops.applied = %d, want %d", got, origins*puts)
	}
	if counters["nic.msgs"] == 0 || counters["net.msgs"] == 0 {
		t.Errorf("nic.msgs=%d net.msgs=%d, want both nonzero", counters["nic.msgs"], counters["net.msgs"])
	}
	// net.* aliases world-global cells; the merge must count them once,
	// so the per-rank NIC deliveries must not be fewer than the network's
	// message count (every network message is delivered by some NIC).
	if counters["nic.msgs"] < counters["net.msgs"] {
		t.Errorf("nic.msgs %d < net.msgs %d: net.* was multiply counted or deliveries lost",
			counters["nic.msgs"], counters["net.msgs"])
	}
	if len(out.Telemetry.Metrics.Histograms) == 0 {
		t.Error("no latency histograms recorded")
	}

	res := Result{Name: "probe"}
	res.absorbTelemetry(out.Telemetry)
	res.noteTelemetry()
	if len(res.Notes) == 0 {
		t.Error("noteTelemetry added no percentile notes")
	}

	var mbuf bytes.Buffer
	if err := res.WriteMetricsJSON(&mbuf); err != nil {
		t.Fatalf("metrics export: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mbuf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if snap.Counters["ops.issued"] != origins*puts {
		t.Errorf("round-tripped ops.issued = %d, want %d", snap.Counters["ops.issued"], origins*puts)
	}

	var tbuf bytes.Buffer
	if err := res.WriteTraceJSON(&tbuf); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	var dump struct {
		Events []struct {
			Rank int    `json:"rank"`
			Cat  string `json:"cat"`
		} `json:"events"`
		Spans []struct {
			Origin int      `json:"origin"`
			ID     uint64   `json:"id"`
			Path   []string `json:"path"`
			Ranks  []int    `json:"ranks"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &dump); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(dump.Events) == 0 {
		t.Fatal("trace sidecar carries no events")
	}
	crossRank := false
	for _, sp := range dump.Spans {
		hasApply := false
		for _, c := range sp.Path {
			if c == "apply" {
				hasApply = true
			}
		}
		distinct := make(map[int]bool)
		for _, r := range sp.Ranks {
			distinct[r] = true
		}
		if hasApply && len(distinct) > 1 {
			crossRank = true
			break
		}
	}
	if !crossRank {
		t.Error("no span crosses ranks through an apply step")
	}
}
