package bench

import "testing"

// TestE16Smoke runs tiny E16 cells — full rank geometry, small request
// counts — and asserts the invariants the full run's PASS notes claim:
// every closed-loop request completes with zero misses, the latency
// histogram is well-formed, contention is attributed to stripes, the
// queue drains exactly once, and the traced cell yields a critical path.
func TestE16Smoke(t *testing.T) {
	const perClient = 120
	out := runE16Serve(90, perClient, false)
	want := int64(E16Clients) * perClient
	if out.lat.Count != want {
		t.Errorf("completed %d requests, want %d", out.lat.Count, want)
	}
	if out.agg.Misses != 0 {
		t.Errorf("%d misses on a fully preloaded key space", out.agg.Misses)
	}
	if out.model <= 0 {
		t.Errorf("non-positive modelled loop time %d", out.model)
	}
	p50, p99 := out.lat.Quantile(0.50), out.lat.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("malformed percentiles: p50=%d p99=%d", p50, p99)
	}
	if len(out.cont) != E16Servers {
		t.Errorf("contention vector covers %d stripes, want %d", len(out.cont), E16Servers)
	}
	if got := out.agg.Gets + out.agg.Puts; got != want {
		t.Errorf("op counters total %d, want %d", got, want)
	}

	const perProd = 60
	qout := runE16Queue(perProd)
	if qout.produced != qout.consumed || qout.produced != int64(E16Clients)*perProd {
		t.Errorf("queue drain mismatch: produced=%d consumed=%d want=%d",
			qout.produced, qout.consumed, int64(E16Clients)*perProd)
	}
	if qout.prodSum != qout.consSum {
		t.Errorf("queue checksums disagree: produced=%d consumed=%d", qout.prodSum, qout.consSum)
	}

	traced := runE16Serve(90, 40, true)
	if traced.crit == nil || traced.crit.Spans == 0 {
		t.Errorf("traced cell produced no critical-path spans")
	}
	if traced.tel == nil || len(traced.tel.Events) == 0 {
		t.Errorf("traced cell recorded no timeline events")
	}
}
