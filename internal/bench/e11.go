package bench

import (
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// RunE11 measures synchronization strength (paper Section IV:
// MPI_RMA_order is "a weaker form of synchronization than remote
// completion"): after each small batch of puts, the origin issues either
// nothing, an Order (delivery ordering for later ops), or a Complete
// (remote completion). On an unordered network Order costs a stall only
// when a later operation actually follows; Complete always pays the probe
// round trip.
func RunE11() Result {
	res := Result{
		Name:  "e11",
		Title: "E11: synchronization strength — none vs Order (shmem_fence) vs Complete (quiet)",
		SeriesOrder: []string{
			"no sync between batches",
			"Order between batches",
			"Complete between batches",
		},
	}
	const batches = 25
	const perBatch = 4
	for _, unordered := range []bool{false, true} {
		netName := "ordered net"
		if unordered {
			netName = "unordered net"
		}
		for i, series := range res.SeriesOrder {
			row, tel := runE11Cell(i, unordered, batches, perBatch)
			row.Series = series
			row.Extra["net_unordered"] = boolTo01(unordered)
			res.absorbTelemetry(tel)
			res.Add(row)
			_ = netName
		}
	}
	res.Notef("size column: 0 = ordered network, 1 = unordered network; %d batches of %d 64B puts", batches, perBatch)
	res.Notef("expected: Order free on ordered nets, cheaper than Complete on unordered nets")
	res.noteTelemetry()
	return res
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// runE11Cell: mode 0 = none, 1 = Order, 2 = Complete between batches.
func runE11Cell(mode int, unordered bool, batches, perBatch int) (Row, *TelemetrySummary) {
	w := runtime.NewWorld(runtime.Config{Ranks: 2, UnorderedNet: unordered, Seed: 77})
	defer w.Close()
	var meas measure
	var fenceStalls int64
	col := newCollector()
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		col.attach(p.Rank(), e)
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(1, 0, tm.Encode())
			p.Barrier()
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := core.DecodeTargetMem(enc)
		if err != nil {
			panic(err)
		}
		src := p.Alloc(64)
		start := time.Now()
		startVT := p.Now()
		for b := 0; b < batches; b++ {
			for i := 0; i < perBatch; i++ {
				if _, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
					panic(err)
				}
			}
			switch mode {
			case 1:
				if err := e.Order(comm, 0); err != nil {
					panic(err)
				}
			case 2:
				if err := e.Complete(comm, 0); err != nil {
					panic(err)
				}
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			panic(err)
		}
		meas.record(time.Since(start), p.Now()-startVT)
		fenceStalls = e.FenceStalls.Value()
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	size := 0
	if unordered {
		size = 1
	}
	row := meas.row("", size)
	row.Extra["fence_stalls"] = float64(fenceStalls)
	return row, col.summary()
}
