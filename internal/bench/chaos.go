package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/vtime"
)

// The chaos experiment (rmabench -chaos): the seven-writer contention
// workload runs under a matrix of fault plans and must converge to the
// exact bytes of the fault-free run. Unlike the Figure 2 cells the
// writers own disjoint slots — a put slot finalized per round and an
// accumulate slot summed commutatively — so the final memory is
// byte-deterministic no matter how the relay reorders retransmissions.
//
// ChaosSeed is the one documented seed of the whole run: the network
// scrambler derives its per-endpoint streams from the world seed, the
// fault draws hash it, and the relay's retry jitter reuses it. Reproduce
// a run by reproducing the seed (it is printed in the result notes).
const ChaosSeed = 4242

const (
	chaosBenchWriters = 7
	chaosBenchSlot    = 64
	chaosBenchRounds  = 20
)

// chaosBenchSeries is the fault matrix swept by RunChaos.
var chaosBenchSeries = []struct {
	Name   string
	Faults simnet.LinkFaults
}{
	// Every series carries the guaranteed early drop burst on top of
	// these default rates; the byte-exact reference is a separate run
	// with no plan at all.
	{"burst-only", simnet.LinkFaults{}},
	{"drop 8%", simnet.LinkFaults{Drop: 0.08}},
	{"drop 5% + dup 15%", simnet.LinkFaults{Drop: 0.05, Dup: 0.15}},
	{"drop+dup+delay+corrupt", simnet.LinkFaults{
		Drop: 0.04, Dup: 0.08, Corrupt: 0.04,
		Delay: 0.2, DelayBy: 5 * time.Microsecond,
	}},
}

// chaosPlan builds one series' fault plan: the configured default rates
// plus a burst window that drops everything on the 1→0 link early in
// virtual time, guaranteeing at least one retransmission per run.
func chaosPlan(lf simnet.LinkFaults) *simnet.FaultPlan {
	return &simnet.FaultPlan{
		Seed:    ChaosSeed,
		Default: lf,
		Bursts: []simnet.Burst{{
			Link:   simnet.LinkKey{Src: 1, Dst: 0},
			From:   0,
			Until:  vtime.Time(20 * time.Microsecond),
			Faults: simnet.LinkFaults{Drop: 1},
		}},
	}
}

// chaosOutcome is one cell of the chaos matrix.
type chaosOutcome struct {
	Row   Row
	Final []byte
	Retries, RetransmitBytes, DupDropped,
	CorruptRejected, FaultsInjected int64
}

// runChaosCell drives the disjoint-slot seven-writer workload under one
// fault plan (nil = fault-free) and returns the target's final bytes
// plus the relay counters.
func runChaosCell(plan *simnet.FaultPlan) chaosOutcome {
	w := runtime.NewWorld(runtime.Config{
		Ranks:  chaosBenchWriters + 1,
		Seed:   ChaosSeed,
		Faults: plan,
	})
	defer w.Close()
	size := 2 * chaosBenchWriters * chaosBenchSlot
	out := chaosOutcome{Final: make([]byte, size)}
	var meas measure
	err := w.Run(func(p *runtime.Proc) {
		e := core.Attach(p, core.Options{})
		// Every chaos rank flies with the recorder armed: if an injected
		// fault ever escalates to a sticky failure, the postmortem (ring
		// of recent relay/apply events plus per-rank health) lands in
		// RMA_DIAG_DIR — the directory CI uploads when `make chaos`
		// fails — or the system temp dir.
		e.EnableFlightRecorder(telemetry.FlightConfig{Dir: os.Getenv("RMA_DIAG_DIR")})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(size)
			enc := tm.Encode()
			for r := 1; r <= chaosBenchWriters; r++ {
				p.Send(r, 0, enc)
			}
			p.Barrier()
			copy(out.Final, p.Mem().Snapshot(region.Offset, size))
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := core.DecodeTargetMem(enc)
		if err != nil {
			panic(err)
		}
		putSlot := (p.Rank() - 1) * chaosBenchSlot
		accSlot := chaosBenchWriters*chaosBenchSlot + putSlot
		scratch := p.Alloc(chaosBenchSlot)
		startVT := p.Now()
		startWall := time.Now()
		for round := 0; round < chaosBenchRounds; round++ {
			pattern := bytes.Repeat([]byte{byte(16*p.Rank() + round)}, chaosBenchSlot)
			p.WriteLocal(scratch, 0, pattern)
			if _, err := e.Put(scratch, chaosBenchSlot, datatype.Byte, tm, putSlot, chaosBenchSlot, datatype.Byte, 0, comm, core.AttrNone); err != nil {
				panic(err)
			}
			if err := e.Complete(comm, 0); err != nil {
				panic(err)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(1000*p.Rank()+round))
			p.WriteLocal(scratch, 0, b[:])
			if _, err := e.Accumulate(core.AccSum, scratch, 1, datatype.Int64, tm, accSlot, 1, datatype.Int64, 0, comm, core.AttrAtomic); err != nil {
				panic(err)
			}
			if err := e.Complete(comm, 0); err != nil {
				panic(err)
			}
		}
		meas.record(time.Since(startWall), p.Now()-startVT)
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	out.Row = meas.row("", chaosBenchSlot)
	out.Retries = w.Net().Retries.Value()
	out.RetransmitBytes = w.Net().RetransmitBytes.Value()
	out.DupDropped = w.Net().DupDropped.Value()
	out.CorruptRejected = w.Net().CorruptRejected.Value()
	out.FaultsInjected = w.Net().FaultsDropped.Value() + w.Net().FaultsDuplicated.Value() +
		w.Net().FaultsDelayed.Value() + w.Net().FaultsCorrupted.Value()
	return out
}

// RunChaos sweeps the chaos fault matrix and checks byte-exact
// convergence of every faulted run against the fault-free bytes.
func RunChaos() Result {
	res := Result{
		Name: "chaos",
		Title: fmt.Sprintf("Chaos: 7-writer disjoint-slot workload under a fault matrix (%d rounds, seed %d)",
			chaosBenchRounds, ChaosSeed),
	}
	baseline := runChaosCell(nil)
	var ok = true
	for _, s := range chaosBenchSeries {
		res.SeriesOrder = append(res.SeriesOrder, s.Name)
		out := runChaosCell(chaosPlan(s.Faults))
		row := out.Row
		row.Series = s.Name
		row.Extra["retries"] = float64(out.Retries)
		row.Extra["retransmit_bytes"] = float64(out.RetransmitBytes)
		row.Extra["dup_dropped"] = float64(out.DupDropped)
		row.Extra["corrupt_rejected"] = float64(out.CorruptRejected)
		row.Extra["faults_injected"] = float64(out.FaultsInjected)
		res.Add(row)
		if !bytes.Equal(out.Final, baseline.Final) {
			res.Notef("VERIFY FAILED: series %q diverged from the fault-free bytes", s.Name)
			ok = false
		}
		if out.Retries == 0 {
			res.Notef("VERIFY FAILED: series %q saw no retransmissions despite the guaranteed drop burst", s.Name)
			ok = false
		}
	}
	if ok {
		res.Notef("PASS: all %d faulted series converged byte-exactly with the fault-free run, with net.retries > 0", len(chaosBenchSeries))
	}
	res.Notef("seed %d drives the scrambler, the fault draws and the retry jitter; rerun with the same seed to reproduce the injected fault sequence", ChaosSeed)
	return res
}
