package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// BenchJSON is the machine-readable benchmark artifact `rmabench -json`
// emits and cmd/benchdiff compares: one file per experiment, holding every
// data point's modelled and wall time plus the run's allocation count.
//
// The modelled series is the contract: it is derived from the LogGP
// virtual-time model and deterministic up to the few-percent scheduling
// sensitivity documented in EXPERIMENTS.md, so CI hard-fails on drift
// beyond a small tolerance. Wall time and allocations are host- and
// runtime-dependent; they ride along for trend-watching and are compared
// warn-only.
type BenchJSON struct {
	Experiment string         `json:"experiment"`
	Title      string         `json:"title"`
	Rows       []BenchJSONRow `json:"rows"`
	// TotalAllocs counts heap allocations (runtime.MemStats.Mallocs
	// delta) across the whole experiment run.
	TotalAllocs uint64 `json:"total_allocs"`
	// AllocsPerOp divides TotalAllocs over the experiment's data points —
	// the per-measured-cell allocation budget benchdiff trend-checks.
	AllocsPerOp float64  `json:"allocs_per_op"`
	Notes       []string `json:"notes,omitempty"`
}

// BenchJSONRow is one data point.
type BenchJSONRow struct {
	Series  string             `json:"series"`
	Size    int                `json:"size"`
	ModelUS float64            `json:"model_us"`
	WallNS  float64            `json:"wall_ns"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// ByNameWithAllocs runs one experiment like ByName while measuring its
// heap allocation count.
func ByNameWithAllocs(name string) (Result, uint64, bool) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, ok := ByName(name)
	runtime.ReadMemStats(&after)
	return res, after.Mallocs - before.Mallocs, ok
}

// BenchArtifact assembles the JSON artifact for one experiment run.
func BenchArtifact(res Result, allocs uint64) BenchJSON {
	art := BenchJSON{
		Experiment:  res.Name,
		Title:       res.Title,
		TotalAllocs: allocs,
		Notes:       res.Notes,
	}
	for _, r := range res.Rows {
		row := BenchJSONRow{
			Series:  r.Series,
			Size:    r.Size,
			ModelUS: r.ModelUS,
			WallNS:  r.WallNS,
		}
		if len(r.Extra) > 0 {
			row.Extra = r.Extra
		}
		art.Rows = append(art.Rows, row)
	}
	if n := len(art.Rows); n > 0 {
		art.AllocsPerOp = float64(allocs) / float64(n)
	}
	return art
}

// WriteBenchJSON writes the artifact, indented for reviewable baselines.
func WriteBenchJSON(w io.Writer, art BenchJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(art)
}

// ReadBenchJSON parses an artifact written by WriteBenchJSON.
func ReadBenchJSON(r io.Reader) (BenchJSON, error) {
	var art BenchJSON
	err := json.NewDecoder(r).Decode(&art)
	return art, err
}
