package bench

import (
	"fmt"

	"mpi3rma/internal/core"
	"mpi3rma/internal/serializer"
)

// E14 — sharded target-side apply scaling, measured on the Figure 2
// workload with disjoint slots (7 origins, 100 batched puts each, every
// origin owning its own Size-byte slot of rank 0's exposure).
//
// The serial engine applies every incoming operation on one logical
// target thread; with seven writers the target's apply work is the
// bottleneck the paper's Figure 2 shows saturating. E14 measures what the
// sharded apply engine (Options.ApplyShards/ApplyWorkers, DESIGN.md §10)
// buys back: the exposure is split into 7 byte-range shards — one per
// origin slot — drained by a bounded worker pool, so non-overlapping
// applies proceed in parallel and the critical path shrinks from the sum
// of all origins' apply work to the busiest worker's share.
//
// Series:
//
//	serial engine    — ApplyShards=0 baseline. Note: the serial model
//	                   charges apply cost on unbounded per-origin DMA
//	                   lanes, so it is an optimistic bound (roughly the
//	                   workers=origins limit), not a floor for workers=1.
//	shards=7 workers=1/2/4 — the sharded engine under a real worker bound.
//
// The acceptance claim is monotone scaling of the sharded series: at
// payloads >= 256 B (where apply cost dominates per-message overhead)
// aggregate model time at rank 0 is nonincreasing from workers=1 to 2
// to 4.

// E14Sizes is the payload sweep; the monotone-scaling claim covers the
// sizes >= E14ClaimSize where apply cost dominates.
var E14Sizes = []int{64, 256, 512, 1024}

// E14ClaimSize is the smallest payload the monotone-scaling note asserts.
const E14ClaimSize = 256

// E14Workers is the worker sweep of the sharded series.
var E14Workers = []int{1, 2, 4}

// E14Shards matches the origin count so each origin's slot maps onto its
// own shard (stride == Size) and no put spans shards.
const E14Shards = Fig2Origins

// E14ApplyPerKB models a memory-bandwidth-bound target: 8x the default
// wire-balanced per-KB apply cost, charged identically to every series
// (serial and sharded), so the target's apply work rather than the wire
// is the scaling bottleneck — the regime the sharded engine exists for.
// With the default constant the wire dominates above ~256 B and every
// worker count idles equally.
const E14ApplyPerKB = 8 * core.DefaultApplyPerKB

func e14Cell(size, shards, workers int) PutsCompleteOutcome {
	return RunPutsComplete(PutsCompleteConfig{
		Origins:       Fig2Origins,
		Puts:          Fig2Puts,
		Size:          size,
		Mech:          serializer.MechThread,
		NonBlocking:   true,
		BatchOps:      E13Batch,
		DisjointSlots: true,
		ApplyShards:   shards,
		ApplyWorkers:  workers,
		ApplyPerKB:    E14ApplyPerKB,
	})
}

func e14SeriesName(workers int) string {
	return fmt.Sprintf("shards=%d workers=%d", E14Shards, workers)
}

// RunE14 sweeps payload size against apply-worker count.
func RunE14() Result {
	res := Result{
		Name:  "e14",
		Title: "E14: sharded target apply scaling (Fig. 2 workload, disjoint slots, 7 origins x 100 batched puts)",
	}
	cell := func(series string, size, shards, workers int) {
		out := e14Cell(size, shards, workers)
		row := out.Row
		row.Series = series
		row.Extra["workers"] = float64(workers)
		row.Extra["msgs"] = float64(out.Msgs)
		row.Extra["batches"] = float64(out.Batches)
		bytes := float64(Fig2Origins * Fig2Puts * size)
		if row.ModelUS > 0 {
			row.Extra["model_mb_per_s"] = bytes / row.ModelUS // B/us == MB/s
		}
		if !out.Verified {
			res.Notef("VERIFY FAILED: series %q size %d left inconsistent slots", series, size)
		}
		res.absorbTelemetry(out.Telemetry)
		res.Add(row)
	}

	const serialName = "serial engine (per-origin lanes)"
	res.SeriesOrder = append(res.SeriesOrder, serialName)
	for _, size := range E14Sizes {
		cell(serialName, size, 0, 0)
	}
	for _, w := range E14Workers {
		name := e14SeriesName(w)
		res.SeriesOrder = append(res.SeriesOrder, name)
		for _, size := range E14Sizes {
			cell(name, size, E14Shards, w)
		}
	}

	res.Notes = append(res.Notes, e14ShapeNotes(&res)...)
	res.Notef("note: the serial series models apply cost on unbounded per-origin lanes "+
		"(an optimistic ~workers=%d bound), so it may undercut workers=1; the scaling claim "+
		"is within the sharded series", Fig2Origins)
	res.noteTelemetry()
	return res
}

// e14ShapeNotes checks the acceptance claim: sharded model time is
// nonincreasing across the worker sweep at payloads >= E14ClaimSize.
func e14ShapeNotes(res *Result) []string {
	var notes []string
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		notes = append(notes, fmt.Sprintf(status+": "+format, args...))
	}
	at := func(workers, size int) float64 {
		for _, r := range res.SeriesRows(e14SeriesName(workers)) {
			if r.Size == size {
				return r.ModelUS
			}
		}
		return 0
	}
	for _, size := range E14Sizes {
		if size < E14ClaimSize {
			continue
		}
		prev := at(E14Workers[0], size)
		ok := prev > 0
		times := fmt.Sprintf("%.1fus", prev)
		for _, w := range E14Workers[1:] {
			cur := at(w, size)
			// Allow sub-0.01% slack for equal-cost ties.
			ok = ok && cur > 0 && cur <= prev*1.0001
			times += fmt.Sprintf(" -> %.1fus", cur)
			prev = cur
		}
		check(ok, "aggregate model time nonincreasing workers %v at %dB (%s)",
			E14Workers, size, times)
	}
	return notes
}
