package bench

import (
	"strings"
	"testing"

	"mpi3rma/internal/core"
	"mpi3rma/internal/serializer"
)

// TestPutsCompleteCell runs one Figure 2 cell per series at a small size
// and checks the data landed and the protocol counters look sane.
func TestPutsCompleteCell(t *testing.T) {
	for _, s := range Fig2SeriesSet {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			out := RunPutsComplete(PutsCompleteConfig{
				Origins: 3,
				Puts:    10,
				Size:    64,
				Attrs:   s.Attrs,
				Mech:    s.Mech,
			})
			if !out.Verified {
				t.Error("target memory inconsistent after puts")
			}
			if out.Row.ModelUS <= 0 {
				t.Errorf("model time %v, want > 0", out.Row.ModelUS)
			}
			if s.Mech == serializer.MechCoarseLock && s.Attrs&core.AttrAtomic != 0 {
				if out.LockGrants != 30 {
					t.Errorf("lock grants = %d, want 30 (one per atomic put)", out.LockGrants)
				}
			} else if out.LockGrants != 0 {
				t.Errorf("lock grants = %d, want 0", out.LockGrants)
			}
		})
	}
}

// TestFig2Shape runs a reduced Figure 2 grid and asserts the paper's
// qualitative ordering of the series on model time.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	res := RunFig2()
	if len(res.Rows) != len(Fig2SeriesSet)*len(Fig2Sizes) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(Fig2SeriesSet)*len(Fig2Sizes))
	}
	for _, note := range res.Notes {
		if strings.HasPrefix(note, "FAIL") || strings.HasPrefix(note, "VERIFY FAILED") {
			t.Error(note)
		}
	}
}
