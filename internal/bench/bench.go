// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figure 2) and the ablation experiments E3–E10 catalogued in
// DESIGN.md. Each experiment builds fresh simulated worlds, drives the
// RMA layers through the same workloads the paper describes, and reports
// two time series per data point:
//
//   - wall: host wall-clock nanoseconds (noisy, host-dependent);
//   - model: virtual-time microseconds from the LogGP cost model
//     (deterministic, parallelism-independent — the primary series; see
//     EXPERIMENTS.md for the shape claims).
package bench

import (
	"fmt"
	"sync"
	"time"

	"mpi3rma/internal/vtime"
)

// Row is one data point of an experiment.
type Row struct {
	// Series names the configuration (figure legend entry).
	Series string
	// Size is the per-operation payload in bytes (0 when not applicable).
	Size int
	// WallNS is the measured wall-clock time in nanoseconds.
	WallNS float64
	// ModelUS is the modelled virtual time in microseconds.
	ModelUS float64
	// Extra carries experiment-specific columns (message counts, lock
	// grants, cache invalidations), keyed by column name.
	Extra map[string]float64
}

// Result is a complete experiment outcome.
type Result struct {
	// Name is the experiment id ("fig2", "e3", ...).
	Name string
	// Title is the human-readable description.
	Title string
	// SeriesOrder lists series names in legend order.
	SeriesOrder []string
	// Rows holds every data point.
	Rows []Row
	// Notes carries free-form observations (counter dumps, shape checks).
	Notes []string
	// Telemetry is the machine-readable sidecar, populated when harness
	// telemetry is on (SetTelemetry / rmabench -metrics).
	Telemetry *TelemetrySummary
}

// Add appends a data point.
func (r *Result) Add(row Row) { r.Rows = append(r.Rows, row) }

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SeriesRows returns the rows of one series in insertion order.
func (r *Result) SeriesRows(series string) []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Series == series {
			out = append(out, row)
		}
	}
	return out
}

// Fig2Sizes are the payload sizes of the paper's Figure 2 sweep
// (8 bytes to 1 KB).
var Fig2Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024}

// Fig2Origins is the number of concurrently putting processes in Figure 2
// (seven origins, one on each XT5 node, all targeting process 0).
const Fig2Origins = 7

// Fig2Puts is the number of puts each origin performs before the single
// RMA complete.
const Fig2Puts = 100

// measure aggregates per-origin wall and virtual times and reports the
// maxima — the experiment completes when the slowest origin does.
type measure struct {
	mu     sync.Mutex
	wall   time.Duration
	model  vtime.Time
	firstW bool
}

func (m *measure) record(wall time.Duration, model vtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if wall > m.wall {
		m.wall = wall
	}
	if model > m.model {
		m.model = model
	}
}

func (m *measure) row(series string, size int) Row {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Row{
		Series:  series,
		Size:    size,
		WallNS:  float64(m.wall.Nanoseconds()),
		ModelUS: float64(m.model) / 1e3,
		Extra:   map[string]float64{},
	}
}
