package bench

import (
	"bytes"
	"strings"
	"testing"
)

func diffFixture() BenchJSON {
	return BenchJSON{
		Experiment:  "e15",
		Title:       "t",
		TotalAllocs: 1000,
		AllocsPerOp: 100,
		Rows: []BenchJSONRow{
			{Series: "a", Size: 0, ModelUS: 100, WallNS: 5000},
			{Series: "a", Size: 8, ModelUS: 200, WallNS: 9000},
			{Series: "b", Size: 8, ModelUS: 150, WallNS: 7000},
		},
		Notes: []string{"PASS: shape holds"},
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	art := diffFixture()
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, art); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	rep := CompareBenchJSON(art, back, DiffOptions{})
	if !rep.OK() || len(rep.Warnings) != 0 {
		t.Fatalf("round-tripped artifact not identical to itself: %+v", rep)
	}
}

func TestCompareBenchJSONModelDrift(t *testing.T) {
	base := diffFixture()
	cur := diffFixture()
	cur.Rows[1].ModelUS = 220 // +10% > 5% tolerance
	rep := CompareBenchJSON(base, cur, DiffOptions{})
	if rep.OK() {
		t.Fatal("10% modelled drift passed a 5% tolerance")
	}
	if !strings.Contains(rep.Failures[0], "drifted") {
		t.Errorf("unexpected failure text: %s", rep.Failures[0])
	}
	// Inside tolerance passes.
	cur.Rows[1].ModelUS = 207 // +3.5%
	if rep := CompareBenchJSON(base, cur, DiffOptions{}); !rep.OK() {
		t.Fatalf("3.5%% drift failed a 5%% tolerance: %+v", rep.Failures)
	}
}

func TestCompareBenchJSONWallAndAllocsWarnOnly(t *testing.T) {
	base := diffFixture()
	cur := diffFixture()
	cur.Rows[0].WallNS = 50000 // 10x wall: warn, not fail
	cur.AllocsPerOp = 500      // 5x allocs: warn, not fail
	rep := CompareBenchJSON(base, cur, DiffOptions{})
	if !rep.OK() {
		t.Fatalf("wall/alloc drift hard-failed: %+v", rep.Failures)
	}
	if len(rep.Warnings) != 2 {
		t.Fatalf("want 2 warnings (wall, allocs), got %+v", rep.Warnings)
	}
}

func TestCompareBenchJSONStructural(t *testing.T) {
	base := diffFixture()
	cur := diffFixture()
	cur.Rows = cur.Rows[:2] // series b vanished
	if rep := CompareBenchJSON(base, cur, DiffOptions{}); rep.OK() {
		t.Fatal("vanished data point passed")
	}
	cur = diffFixture()
	cur.Notes = append(cur.Notes, "FAIL: overlap claim broke")
	if rep := CompareBenchJSON(base, cur, DiffOptions{}); rep.OK() {
		t.Fatal("FAIL self-check note passed")
	}
	cur = diffFixture()
	cur.Experiment = "e14"
	if rep := CompareBenchJSON(base, cur, DiffOptions{}); rep.OK() {
		t.Fatal("experiment mismatch passed")
	}
	// New data points warn but pass (baseline refresh reminder).
	cur = diffFixture()
	cur.Rows = append(cur.Rows, BenchJSONRow{Series: "c", Size: 8, ModelUS: 1})
	rep := CompareBenchJSON(base, cur, DiffOptions{})
	if !rep.OK() || len(rep.Warnings) == 0 {
		t.Fatalf("new data point: %+v", rep)
	}
}
