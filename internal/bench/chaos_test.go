package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosSmoke runs one faulted cell against the fault-free reference
// and checks the chaos acceptance claims: byte-exact convergence with
// net.retries > 0 (the burst guarantees at least one retransmission).
func TestChaosSmoke(t *testing.T) {
	baseline := runChaosCell(nil)
	if baseline.Retries != 0 {
		t.Errorf("fault-free reference retransmitted %d times, want 0", baseline.Retries)
	}
	faulted := runChaosCell(chaosPlan(chaosBenchSeries[1].Faults))
	if !bytes.Equal(faulted.Final, baseline.Final) {
		t.Fatal("faulted run diverged from the fault-free bytes")
	}
	if faulted.Retries == 0 {
		t.Fatal("guaranteed drop burst produced no retransmissions")
	}
	if faulted.FaultsInjected == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

// TestChaosRegistered: the chaos experiment is reachable by id and its
// verdict notes carry the documented seed.
func TestChaosRegistered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "chaos" {
			found = true
		}
	}
	if !found {
		t.Fatal("chaos missing from Names()")
	}
	res, ok := ByName("chaos")
	if !ok {
		t.Fatal("ByName(chaos) not found")
	}
	for _, note := range res.Notes {
		if strings.Contains(note, "VERIFY FAILED") {
			t.Errorf("chaos verification failed: %s", note)
		}
	}
	seedSeen := false
	for _, note := range res.Notes {
		if strings.Contains(note, "seed 4242") {
			seedSeen = true
		}
	}
	if !seedSeen {
		t.Error("chaos notes do not document the seed")
	}
}
