package bench

import (
	"testing"
	"time"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/vtime"
)

// checkReconciles asserts the analyzer's self-validation invariant on a
// cell's recorded timeline: every span's stage sum equals its end-to-end
// elapsed virtual time exactly (the attribution walk assigns every gap
// to exactly one stage, so this holds by construction — a mismatch means
// the walk lost or double-counted time).
func checkReconciles(t *testing.T, out PutsCompleteOutcome) *telemetry.CriticalPathReport {
	t.Helper()
	if out.Telemetry == nil || len(out.Telemetry.Events) == 0 {
		t.Fatal("cell recorded no timeline (telemetry off?)")
	}
	rep := telemetry.AnalyzeCriticalPath(out.Telemetry.Events)
	if rep.Spans == 0 {
		t.Fatal("analyzer found no spans in a recorded timeline")
	}
	if rep.Mismatched != 0 {
		t.Fatalf("%d of %d spans did not reconcile", rep.Mismatched, rep.Spans)
	}
	if rep.StageTotal() != rep.TotalVTime {
		t.Fatalf("stage sum %d != end-to-end vtime %d", rep.StageTotal(), rep.TotalVTime)
	}
	return rep
}

// TestCritPathReconcilesE13 runs a batched E13 cell (the heaviest
// protocol path: issue queue, pack, batch envelope, sharded apply,
// notify) with telemetry on and checks exact vtime reconciliation. On a
// lossless wire no retransmit-stall may appear.
func TestCritPathReconcilesE13(t *testing.T) {
	SetTelemetry(true)
	defer SetTelemetry(false)
	out := RunPutsComplete(PutsCompleteConfig{
		Origins:     7,
		Puts:        20,
		Size:        64,
		Mech:        serializer.MechThread,
		NonBlocking: true,
		BatchOps:    E13Batch,
	})
	rep := checkReconciles(t, out)
	if s := rep.Stage(telemetry.StageRetransmitStall); s != nil && s.Total != 0 {
		t.Fatalf("lossless run attributed %dns to retransmit-stall, want 0", s.Total)
	}
	for _, stage := range []string{telemetry.StageWire, telemetry.StageApply} {
		if s := rep.Stage(stage); s == nil || s.Total == 0 {
			t.Errorf("stage %s absent from an E13 run", stage)
		}
	}
}

// TestCritPathRetransmitStallOnlyUnderFaults runs the same cell twice —
// once lossless, once under the guaranteed drop burst that forces the
// relay to retransmit — and checks the retransmit-stall stage appears
// exactly when net.retries > 0, while both timelines still reconcile
// exactly.
func TestCritPathRetransmitStallOnlyUnderFaults(t *testing.T) {
	SetTelemetry(true)
	defer SetTelemetry(false)
	cell := func(plan *simnet.FaultPlan) PutsCompleteOutcome {
		return RunPutsComplete(PutsCompleteConfig{
			Origins: 3,
			Puts:    20,
			Size:    64,
			Mech:    serializer.MechThread,
			WorldConfig: func(cfg *runtime.Config) {
				cfg.Faults = plan
			},
		})
	}
	clean := cell(nil)
	if clean.Retries != 0 {
		t.Fatalf("lossless cell reported %d retries", clean.Retries)
	}
	if s := checkReconciles(t, clean).Stage(telemetry.StageRetransmitStall); s != nil && s.Total != 0 {
		t.Fatalf("lossless cell attributed %dns to retransmit-stall, want 0", s.Total)
	}

	faulted := cell(&simnet.FaultPlan{
		Seed: 1001,
		Bursts: []simnet.Burst{{
			Link:   simnet.LinkKey{Src: 1, Dst: 0},
			Until:  vtime.Time(20 * time.Microsecond),
			Faults: simnet.LinkFaults{Drop: 1},
		}},
	})
	if faulted.Retries == 0 {
		t.Fatal("guaranteed drop burst produced no retransmissions")
	}
	rep := checkReconciles(t, faulted)
	if s := rep.Stage(telemetry.StageRetransmitStall); s == nil || s.Total == 0 {
		t.Fatal("retried run shows no retransmit-stall stage")
	}
}
