package bench

import "testing"

// TestE14Smoke runs a serial cell and two sharded cells at one
// apply-dominated payload and checks the acceptance shape on that
// triple: disjoint slots verify byte-exactly under the sharded engine,
// and model time does not regress when the worker bound doubles.
func TestE14Smoke(t *testing.T) {
	serial := e14Cell(256, 0, 0)
	w1 := e14Cell(256, E14Shards, 1)
	w2 := e14Cell(256, E14Shards, 2)
	if !serial.Verified || !w1.Verified || !w2.Verified {
		t.Fatal("a cell left inconsistent slot contents")
	}
	if w1.Row.ModelUS <= 0 || w2.Row.ModelUS <= 0 {
		t.Fatalf("sharded cells reported no model time (w1 %.1fus, w2 %.1fus)",
			w1.Row.ModelUS, w2.Row.ModelUS)
	}
	if w2.Row.ModelUS > w1.Row.ModelUS*1.0001 {
		t.Errorf("workers=2 model time %.1fus regressed over workers=1 %.1fus",
			w2.Row.ModelUS, w1.Row.ModelUS)
	}
}

// TestE14Registered: the experiment is reachable through the rmabench
// registry (ByName would run the full grid, so only the listing is
// checked here).
func TestE14Registered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "e14" {
			found = true
		}
	}
	if !found {
		t.Fatal("e14 missing from Names()")
	}
}
