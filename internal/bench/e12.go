package bench

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
)

// RunE12 is the calibration-sensitivity sweep: the repository claims
// Figure 2's *shape*, not its microseconds, so the qualitative ordering
// of the series must survive substantial changes to the cost model. Each
// variant scales one axis of the LogGP model (wire latency, link
// bandwidth, CPU overhead) by 4× in each direction and re-runs a reduced
// Figure 2 grid; the notes report whether every shape invariant still
// holds. A FAIL here would mean a conclusion was an artifact of the
// chosen constants.
func RunE12() Result {
	res := Result{
		Name:  "e12",
		Title: "E12: cost-model sensitivity — Figure 2 shape invariants under 4x calibration changes",
	}
	type variant struct {
		name string
		cost simnet.CostModel
	}
	base := simnet.DefaultCost()
	scale := func(mutate func(c *simnet.CostModel)) simnet.CostModel {
		c := base
		mutate(&c)
		return c
	}
	variants := []variant{
		{"baseline", base},
		{"latency x4", scale(func(c *simnet.CostModel) { c.Latency *= 4 })},
		{"latency /4", scale(func(c *simnet.CostModel) { c.Latency /= 4 })},
		{"bandwidth x4", scale(func(c *simnet.CostModel) { c.PerKB /= 4 })},
		{"bandwidth /4", scale(func(c *simnet.CostModel) { c.PerKB *= 4 })},
		{"cpu overhead x4", scale(func(c *simnet.CostModel) { c.Overhead *= 4; c.Gap *= 4 })},
		{"cpu overhead /4", scale(func(c *simnet.CostModel) { c.Overhead /= 4; c.Gap /= 4 })},
	}
	sizes := []int{8, 1024}
	for _, v := range variants {
		res.SeriesOrder = append(res.SeriesOrder, v.name)
		means := make(map[string]float64)
		for _, s := range Fig2SeriesSet {
			var sum float64
			for _, size := range sizes {
				cost := v.cost
				out := RunPutsComplete(PutsCompleteConfig{
					Origins: Fig2Origins,
					Puts:    Fig2Puts,
					Size:    size,
					Attrs:   s.Attrs,
					Mech:    s.Mech,
					WorldConfig: func(wc *runtime.Config) {
						wc.Cost = cost
					},
				})
				sum += out.Row.ModelUS
				res.absorbTelemetry(out.Telemetry)
			}
			means[s.Name] = sum / float64(len(sizes))
		}
		// One summary row per variant: the coarse/none and rc/none ratios.
		none := means["no attributes"]
		row := Row{
			Series: v.name,
			Size:   0,
			Extra: map[string]float64{
				"none_us":        round2(none),
				"ordering_ratio": round2(means["ordering"] / none),
				"rc_ratio":       round2(means["remote complete"] / none),
				"thread_ratio":   round2(means["atomicity + thread serializer"] / none),
				"coarse_ratio":   round2(means["atomicity + coarse lock"] / none),
			},
			ModelUS: round2(none),
		}
		res.Add(row)
		// Tolerances: the reduced grid (2 sizes, 1 repetition) carries a
		// few percent of scheduling noise in the order-insensitive lane
		// bounds, so "free" means within 15% here; the full Figure 2 grid
		// checks 5%.
		ok := means["ordering"] <= none*1.15 &&
			means["atomicity + thread serializer"] < means["atomicity + coarse lock"]/2 &&
			means["atomicity + coarse lock"] > none*2 &&
			means["remote complete"] > none
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		res.Notef("%s: %s — ordering/none=%.2f rc/none=%.2f thread/none=%.2f coarse/none=%.2f",
			status, v.name,
			means["ordering"]/none, means["remote complete"]/none,
			means["atomicity + thread serializer"]/none, means["atomicity + coarse lock"]/none)
	}
	res.noteTelemetry()
	return res
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
