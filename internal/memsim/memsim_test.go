package memsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func coherentMem(size int) *Memory {
	return New(Config{Size: size})
}

func sxMem(size, line int) *Memory {
	return New(Config{Size: size, Coherence: NonCoherentWriteThrough, CacheLine: line})
}

func TestAllocBump(t *testing.T) {
	m := coherentMem(100)
	a, err := m.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offset != 0 || a.Size != 40 || b.Offset != 40 || b.Size != 60 {
		t.Fatalf("regions %+v %+v", a, b)
	}
	if _, err := m.Alloc(1); err == nil {
		t.Fatal("allocation beyond capacity should fail")
	}
	if _, err := m.Alloc(-1); err == nil {
		t.Fatal("negative allocation should fail")
	}
}

func TestBoundsChecks(t *testing.T) {
	m := coherentMem(16)
	if err := m.LocalWrite(10, make([]byte, 10)); err == nil {
		t.Error("out-of-bounds local write should fail")
	}
	if err := m.RemoteWrite(-1, make([]byte, 2)); err == nil {
		t.Error("negative-offset remote write should fail")
	}
	if err := m.LocalRead(16, make([]byte, 1)); err == nil {
		t.Error("out-of-bounds read should fail")
	}
	if err := m.Update(12, 8, func([]byte) {}); err == nil {
		t.Error("out-of-bounds update should fail")
	}
}

func TestCoherentRemoteVisibleLocally(t *testing.T) {
	m := coherentMem(64)
	if err := m.RemoteWrite(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("coherent local read = %v", buf)
	}
	if m.StaleReads.Value() != 0 {
		t.Fatal("coherent memory should never report stale reads")
	}
}

// TestNonCoherentStaleRead is the Section III-B2 hazard: a cached line is
// NOT invalidated by a remote write, so the local reader sees stale data
// until Fence or Invalidate.
func TestNonCoherentStaleRead(t *testing.T) {
	m := sxMem(128, 16)
	if err := m.LocalWrite(0, bytes.Repeat([]byte{7}, 16)); err != nil {
		t.Fatal(err)
	}
	// Prime the cache.
	buf := make([]byte, 16)
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	// Remote write bypasses the cache.
	if err := m.RemoteWrite(0, bytes.Repeat([]byte{9}, 16)); err != nil {
		t.Fatal(err)
	}
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatalf("read %d after remote write; expected the stale cached 7", buf[0])
	}
	if m.StaleReads.Value() == 0 {
		t.Fatal("stale read not counted")
	}
	// Fence invalidates; now the new data is visible.
	if n := m.Fence(); n == 0 {
		t.Fatal("fence should drop cached lines")
	}
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatalf("read %d after fence, want 9", buf[0])
	}
}

func TestNonCoherentInvalidateRange(t *testing.T) {
	m := sxMem(128, 16)
	// Prime two lines.
	buf := make([]byte, 32)
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if m.CachedLines() != 2 {
		t.Fatalf("cached lines = %d, want 2", m.CachedLines())
	}
	if err := m.RemoteWrite(0, bytes.Repeat([]byte{5}, 32)); err != nil {
		t.Fatal(err)
	}
	// Invalidate only the first line: first line fresh, second stale.
	if n := m.Invalidate(0, 16); n != 1 {
		t.Fatalf("invalidated %d lines, want 1", n)
	}
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Errorf("invalidated line reads %d, want 5", buf[0])
	}
	if buf[16] != 0 {
		t.Errorf("non-invalidated line reads %d, want stale 0", buf[16])
	}
}

// TestNonCoherentLocalWriteThrough: local writes go through the cache, so
// the local writer always sees its own writes.
func TestNonCoherentLocalWriteThrough(t *testing.T) {
	m := sxMem(64, 16)
	buf := make([]byte, 8)
	if err := m.LocalRead(0, buf); err != nil { // prime
		t.Fatal(err)
	}
	if err := m.LocalWrite(0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := m.LocalRead(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("own write invisible: read %d", buf[0])
	}
	// And memory has it too (write-through), visible to remote readers.
	rbuf := make([]byte, 1)
	if err := m.RemoteRead(0, rbuf); err != nil {
		t.Fatal(err)
	}
	if rbuf[0] != 42 {
		t.Fatalf("write-through missed memory: remote read %d", rbuf[0])
	}
}

func TestUpdateAtomicVisibility(t *testing.T) {
	m := coherentMem(8)
	if err := m.RemoteWrite(0, []byte{1, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	err := m.Update(0, 8, func(cur []byte) {
		cur[0]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot(0, 1)[0]; got != 2 {
		t.Fatalf("update result %d, want 2", got)
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Offset: 10, Size: 20}
	if r.End() != 30 {
		t.Errorf("End = %d", r.End())
	}
	if !r.Contains(0, 20) || r.Contains(1, 20) || r.Contains(-1, 2) {
		t.Error("Contains is wrong")
	}
	if !r.Overlaps(Region{Offset: 29, Size: 5}) || r.Overlaps(Region{Offset: 30, Size: 5}) {
		t.Error("Overlaps is wrong")
	}
}

// Property: on coherent memory, RemoteRead always returns the bytes most
// recently written by either path.
func TestCoherentReadYourWritesProperty(t *testing.T) {
	m := coherentMem(256)
	shadow := make([]byte, 256)
	r := rand.New(rand.NewSource(3))
	f := func(offRaw uint8, lenRaw uint8, remote bool) bool {
		off := int(offRaw) % 200
		n := int(lenRaw)%50 + 1
		data := make([]byte, n)
		r.Read(data)
		if remote {
			if err := m.RemoteWrite(off, data); err != nil {
				return false
			}
		} else {
			if err := m.LocalWrite(off, data); err != nil {
				return false
			}
		}
		copy(shadow[off:], data)
		got := make([]byte, n)
		if err := m.RemoteRead(off, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: on non-coherent memory, a Fence always reconciles local reads
// with main memory.
func TestFenceReconcilesProperty(t *testing.T) {
	m := sxMem(256, 32)
	r := rand.New(rand.NewSource(4))
	f := func(offRaw uint8, lenRaw uint8) bool {
		off := int(offRaw) % 200
		n := int(lenRaw)%50 + 1
		data := make([]byte, n)
		r.Read(data)
		// Prime, clobber remotely, fence, read.
		prime := make([]byte, n)
		if err := m.LocalRead(off, prime); err != nil {
			return false
		}
		if err := m.RemoteWrite(off, data); err != nil {
			return false
		}
		m.Fence()
		got := make([]byte, n)
		if err := m.LocalRead(off, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceString(t *testing.T) {
	if Coherent.String() != "coherent" || NonCoherentWriteThrough.String() != "non-coherent-write-through" {
		t.Error("Coherence.String is wrong")
	}
}
