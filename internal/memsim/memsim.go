// Package memsim simulates the memory system of one rank.
//
// The paper (Section III-B) distinguishes cache-coherent targets (Cray XT,
// most Top-500 systems) from non-cache-coherent ones (NEC SX series, whose
// scalar units use a write-through cache that is *not* kept coherent with
// writes performed by other processors or by the network). On such systems
// a remote write lands in main memory while the target's scalar cache may
// keep serving a stale copy until the target executes a memory fence or
// invalidates the affected lines — which is exactly why MPI-2's RMA design
// required target involvement, and why the strawman interface must cost
// target-side work on these machines.
//
// Memory models exactly that: a flat byte store plus, in the non-coherent
// configuration, a per-rank write-through scalar cache with explicit
// Fence/Invalidate operations and stale-read accounting.
//
// All remote access in this repository goes through RemoteRead/RemoteWrite
// (the simulated NIC path); rank-local code uses LocalRead/LocalWrite (the
// simulated scalar unit). Nothing else touches the byte store, so the
// coherence semantics are honest.
package memsim

import (
	"fmt"
	"sync"

	"mpi3rma/internal/stats"
)

// Coherence selects the cache model for a rank's memory.
type Coherence int

const (
	// Coherent models a fully cache-coherent node: remote writes are
	// immediately visible to local reads (Cray XT-style).
	Coherent Coherence = iota
	// NonCoherentWriteThrough models an NEC SX-style scalar unit: local
	// accesses go through a write-through cache that remote writes do not
	// invalidate. Local reads may return stale data until Fence or
	// Invalidate is called.
	NonCoherentWriteThrough
)

// String returns the coherence model's name.
func (c Coherence) String() string {
	switch c {
	case Coherent:
		return "coherent"
	case NonCoherentWriteThrough:
		return "non-coherent-write-through"
	default:
		return fmt.Sprintf("Coherence(%d)", int(c))
	}
}

// DefaultCacheLine is the cache line size used when Config.CacheLine is 0.
const DefaultCacheLine = 64

// Config configures a Memory.
type Config struct {
	// Size is the size of the rank's memory in bytes.
	Size int
	// Coherence selects the cache model.
	Coherence Coherence
	// CacheLine is the cache line size in bytes for the non-coherent
	// model; 0 means DefaultCacheLine.
	CacheLine int
}

// cacheLine is one cached line of the scalar cache together with the memory
// version it was filled from, used to detect stale reads.
type cacheLine struct {
	data    []byte
	version uint64
}

// Memory is the memory system of one rank.
type Memory struct {
	cfg  Config
	line int

	mu   sync.Mutex
	data []byte
	// next allocation offset for Alloc.
	next int

	// stripes, present only under the Coherent model, partition the byte
	// store into fixed ranges with one lock each, so concurrent remote
	// writes to disjoint ranges (the sharded target-side apply engine) do
	// not serialize on a single memory lock. An access locks the stripes
	// covering its byte range in ascending order; overlapping accesses
	// always share at least one stripe, so Update keeps its atomicity
	// guarantee. The non-coherent model keeps the single mu: its cache and
	// version state is shared across the whole store.
	stripes   []sync.Mutex
	stripeLen int

	// Non-coherent model state: the scalar cache and a per-line version
	// counter bumped by every write to memory, so stale cache hits can be
	// detected and counted.
	cache   map[int]*cacheLine
	version []uint64

	// Counters (all models).
	LocalReads   stats.Counter
	LocalWrites  stats.Counter
	RemoteReads  stats.Counter
	RemoteWrites stats.Counter
	StaleReads   stats.Counter // local reads served from a stale cache line
	Fences       stats.Counter
	Invalidates  stats.Counter // cache lines dropped by Fence/Invalidate
}

// New returns a Memory for the given configuration.
func New(cfg Config) *Memory {
	if cfg.Size <= 0 {
		panic("memsim: Config.Size must be positive")
	}
	if cfg.CacheLine == 0 {
		cfg.CacheLine = DefaultCacheLine
	}
	if cfg.CacheLine < 1 {
		panic("memsim: Config.CacheLine must be positive")
	}
	m := &Memory{
		cfg:  cfg,
		line: cfg.CacheLine,
		data: make([]byte, cfg.Size),
	}
	if cfg.Coherence == NonCoherentWriteThrough {
		m.cache = make(map[int]*cacheLine)
		m.version = make([]uint64, (cfg.Size+cfg.CacheLine-1)/cfg.CacheLine)
	} else {
		n := memStripes
		if cfg.Size < n {
			n = cfg.Size
		}
		m.stripeLen = (cfg.Size + n - 1) / n
		m.stripes = make([]sync.Mutex, (cfg.Size+m.stripeLen-1)/m.stripeLen)
	}
	return m
}

// memStripes is the stripe count for coherent memories. Plenty for the
// shard counts the apply engine uses while keeping lock state small.
const memStripes = 64

// lockRange acquires every stripe covering [off, off+n) in ascending
// order; all range accesses acquire in the same order, so there is no
// lock-order cycle. The caller must have bounds-checked the range.
func (m *Memory) lockRange(off, n int) {
	first, last := m.stripeSpan(off, n)
	for s := first; s <= last; s++ {
		m.stripes[s].Lock()
	}
}

// unlockRange releases the stripes covering [off, off+n).
func (m *Memory) unlockRange(off, n int) {
	first, last := m.stripeSpan(off, n)
	for s := last; s >= first; s-- {
		m.stripes[s].Unlock()
	}
}

// stripeSpan maps a byte range to an inclusive stripe range. Zero-length
// accesses are pinned to a single in-bounds stripe so lock/unlock pairs
// stay balanced.
func (m *Memory) stripeSpan(off, n int) (first, last int) {
	if n <= 0 {
		if off >= len(m.data) {
			off = len(m.data) - 1
		}
		n = 1
	}
	return off / m.stripeLen, (off + n - 1) / m.stripeLen
}

// Size returns the total memory size in bytes.
func (m *Memory) Size() int { return m.cfg.Size }

// Coherence returns the configured coherence model.
func (m *Memory) Coherence() Coherence { return m.cfg.Coherence }

// Region identifies a contiguous range of a rank's memory. Regions are what
// target-memory objects describe; they carry no pointer to the Memory so
// they can be shipped between ranks as plain values.
type Region struct {
	Offset int
	Size   int
}

// End returns the offset one past the region's last byte.
func (r Region) End() int { return r.Offset + r.Size }

// Contains reports whether [off, off+n) lies within the region.
func (r Region) Contains(off, n int) bool {
	return off >= 0 && n >= 0 && off+n <= r.Size
}

// Overlaps reports whether the two regions share any byte.
func (r Region) Overlaps(o Region) bool {
	return r.Offset < o.End() && o.Offset < r.End()
}

// Alloc carves a fresh region of the given size out of the memory, or
// returns an error if the memory is exhausted. Allocation is a simple bump
// allocator: the paper's experiments never free memory.
func (m *Memory) Alloc(size int) (Region, error) {
	if size < 0 {
		return Region{}, fmt.Errorf("memsim: negative allocation size %d", size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.next+size > len(m.data) {
		return Region{}, fmt.Errorf("memsim: out of memory: want %d bytes, %d free", size, len(m.data)-m.next)
	}
	r := Region{Offset: m.next, Size: size}
	m.next += size
	return r, nil
}

// MustAlloc is Alloc that panics on failure, for tests and examples.
func (m *Memory) MustAlloc(size int) Region {
	r, err := m.Alloc(size)
	if err != nil {
		panic(err)
	}
	return r
}

func (m *Memory) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(m.data) {
		return fmt.Errorf("memsim: access [%d,%d) out of bounds (size %d)", off, off+n, len(m.data))
	}
	return nil
}

// bumpVersions records a write to [off, off+n) for stale-read detection.
// Caller holds m.mu.
func (m *Memory) bumpVersions(off, n int) {
	if m.version == nil || n == 0 {
		return
	}
	first := off / m.line
	last := (off + n - 1) / m.line
	for l := first; l <= last; l++ {
		m.version[l]++
	}
}

// LocalWrite writes data at off as the rank's own scalar unit would.
// Under the non-coherent model the write goes through the write-through
// cache: both the cache line and memory are updated, so local writes are
// never stale for the local reader.
func (m *Memory) LocalWrite(off int, data []byte) error {
	if err := m.check(off, len(data)); err != nil {
		return err
	}
	m.LocalWrites.Inc()
	if m.stripes != nil {
		m.lockRange(off, len(data))
		copy(m.data[off:], data)
		m.unlockRange(off, len(data))
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.data[off:], data)
	m.bumpVersions(off, len(data))
	if m.cache != nil {
		m.refreshCacheLocked(off, len(data))
	}
	return nil
}

// LocalRead reads n bytes at off into buf as the rank's own scalar unit
// would. Under the non-coherent model the read is served line-by-line from
// the scalar cache, filling missing lines from memory; lines that are
// present but stale (memory was modified by a remote write after the line
// was cached) are served stale, and StaleReads is incremented — this is the
// hazard Fence/Invalidate exist to remove.
func (m *Memory) LocalRead(off int, buf []byte) error {
	if err := m.check(off, len(buf)); err != nil {
		return err
	}
	m.LocalReads.Inc()
	if m.stripes != nil {
		m.lockRange(off, len(buf))
		copy(buf, m.data[off:off+len(buf)])
		m.unlockRange(off, len(buf))
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cache == nil {
		copy(buf, m.data[off:off+len(buf)])
		return nil
	}
	m.readThroughCacheLocked(off, buf)
	return nil
}

// readThroughCacheLocked serves buf from the scalar cache. Caller holds
// m.mu and has bounds-checked the access.
func (m *Memory) readThroughCacheLocked(off int, buf []byte) {
	n := len(buf)
	pos := 0
	stale := false
	for pos < n {
		addr := off + pos
		l := addr / m.line
		lineStart := l * m.line
		lineEnd := lineStart + m.line
		if lineEnd > len(m.data) {
			lineEnd = len(m.data)
		}
		cl, ok := m.cache[l]
		if !ok {
			cl = &cacheLine{
				data:    append([]byte(nil), m.data[lineStart:lineEnd]...),
				version: m.version[l],
			}
			m.cache[l] = cl
		} else if cl.version != m.version[l] {
			stale = true
		}
		// Copy the in-line portion of the request from the cached copy.
		from := addr - lineStart
		take := lineEnd - addr
		if take > n-pos {
			take = n - pos
		}
		copy(buf[pos:pos+take], cl.data[from:from+take])
		pos += take
	}
	if stale {
		m.StaleReads.Inc()
	}
}

// refreshCacheLocked re-fills any cached lines covering [off, off+n) from
// memory (write-through behaviour for local writes). Caller holds m.mu.
func (m *Memory) refreshCacheLocked(off, n int) {
	if n == 0 {
		return
	}
	first := off / m.line
	last := (off + n - 1) / m.line
	for l := first; l <= last; l++ {
		if cl, ok := m.cache[l]; ok {
			lineStart := l * m.line
			lineEnd := lineStart + m.line
			if lineEnd > len(m.data) {
				lineEnd = len(m.data)
			}
			copy(cl.data, m.data[lineStart:lineEnd])
			cl.version = m.version[l]
		}
	}
}

// RemoteWrite writes data at off as the NIC would: directly into main
// memory, bypassing (and under the non-coherent model, *not* invalidating)
// the target's scalar cache.
func (m *Memory) RemoteWrite(off int, data []byte) error {
	if err := m.check(off, len(data)); err != nil {
		return err
	}
	m.RemoteWrites.Inc()
	if m.stripes != nil {
		m.lockRange(off, len(data))
		copy(m.data[off:], data)
		m.unlockRange(off, len(data))
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.data[off:], data)
	m.bumpVersions(off, len(data))
	return nil
}

// RemoteRead reads n bytes at off into buf as the NIC would: directly from
// main memory. (On the SX the vector unit likewise reads memory directly.)
func (m *Memory) RemoteRead(off int, buf []byte) error {
	if err := m.check(off, len(buf)); err != nil {
		return err
	}
	m.RemoteReads.Inc()
	if m.stripes != nil {
		m.lockRange(off, len(buf))
		copy(buf, m.data[off:off+len(buf)])
		m.unlockRange(off, len(buf))
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(buf, m.data[off:off+len(buf)])
	return nil
}

// Update applies fn to the n bytes at off under the memory lock, reading
// and writing main memory directly. It is the primitive accumulate and
// read-modify-write operations use: the mutation is atomic with respect to
// every other access to this Memory.
func (m *Memory) Update(off, n int, fn func(cur []byte)) error {
	if err := m.check(off, n); err != nil {
		return err
	}
	if m.stripes != nil {
		m.lockRange(off, n)
		fn(m.data[off : off+n])
		m.unlockRange(off, n)
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fn(m.data[off : off+n])
	m.bumpVersions(off, n)
	return nil
}

// Fence models the SX memory fence: it ensures all previous accesses are
// visible by discarding the entire scalar cache. On a coherent memory it is
// a no-op. It returns the number of cache lines invalidated.
func (m *Memory) Fence() int {
	m.Fences.Inc()
	if m.cache == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.cache)
	for l := range m.cache {
		delete(m.cache, l)
	}
	m.Invalidates.Add(int64(n))
	return n
}

// Invalidate drops any cached lines covering [off, off+n), making
// subsequent local reads of that range see main memory. It returns the
// number of lines dropped. On a coherent memory it is a no-op.
func (m *Memory) Invalidate(off, n int) int {
	if m.cache == nil || n <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	first := off / m.line
	last := (off + n - 1) / m.line
	dropped := 0
	for l := first; l <= last; l++ {
		if _, ok := m.cache[l]; ok {
			delete(m.cache, l)
			dropped++
		}
	}
	m.Invalidates.Add(int64(dropped))
	return dropped
}

// CachedLines returns how many lines the scalar cache currently holds
// (always 0 for the coherent model).
func (m *Memory) CachedLines() int {
	if m.cache == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// Snapshot returns a copy of the n bytes at off read directly from main
// memory, bypassing all cache modelling. It is intended for test
// verification only.
func (m *Memory) Snapshot(off, n int) []byte {
	if err := m.check(off, n); err != nil {
		panic(err)
	}
	if m.stripes != nil {
		m.lockRange(off, n)
		out := append([]byte(nil), m.data[off:off+n]...)
		m.unlockRange(off, n)
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data[off:off+n]...)
}
