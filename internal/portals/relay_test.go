package portals

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// FuzzDedupWindow pins the compact dedup window against a map-based
// oracle: same duplicate verdicts, including across uint64 wraparound,
// duplicate bursts, and replays from far below the base.
func FuzzDedupWindow(f *testing.F) {
	f.Add(uint64(0), []byte{1, 2, 3, 2, 1})
	f.Add(uint64(0), []byte{5, 4, 3, 2, 1, 1, 2, 3})
	f.Add(^uint64(0)-3, []byte{1, 2, 3, 4, 5, 6, 7, 8}) // straddles 2^64
	f.Add(^uint64(0), []byte{0x80, 0x7f, 1, 0xff, 2})   // replays below base
	f.Fuzz(func(t *testing.T, start uint64, deltas []byte) {
		w := dedupWindow{base: start}
		oracle := map[uint64]bool{}
		for _, d := range deltas {
			// Signed delta around the starting base: negatives are
			// out-of-window replays, positives new or repeated seqs.
			seq := start + uint64(int64(int8(d)))
			wantDup := int64(seq-start) <= 0 || oracle[seq]
			if got := w.dup(seq); got != wantDup {
				t.Fatalf("dup(%d) = %v, oracle says %v (start %d)", seq, got, wantDup, start)
			}
			if !wantDup {
				w.admit(seq)
				oracle[seq] = true
			}
		}
		// Nothing admitted is ever forgotten (folding into base must not
		// lose coverage).
		for seq := range oracle {
			if !w.dup(seq) {
				t.Fatalf("admitted seq %d no longer reported as duplicate", seq)
			}
		}
	})
}

// relayRig is the two-rank put fixture used by the reliability tests:
// rank 1 exposes 256 bytes at portal index 5, rank 0 gets a 64-byte
// source MD pre-filled with 0xCD.
func relayRig(t *testing.T) (r *rig, srcMD *MD, srcEQ *EQ, tgtOff int) {
	t.Helper()
	r = newRig(t, 2, true)
	tgtRegion := r.mems[1].MustAlloc(256)
	tgtMD := r.nics[1].AttachMD(tgtRegion, nil, MDPut|MDGet)
	r.nics[1].Expose(5, tgtMD)
	srcRegion := r.mems[0].MustAlloc(64)
	r.mems[0].LocalWrite(srcRegion.Offset, bytes.Repeat([]byte{0xCD}, 64))
	srcEQ = NewEQ(0)
	srcMD = r.nics[0].AttachMD(srcRegion, srcEQ, 0)
	return r, srcMD, srcEQ, tgtRegion.Offset
}

// TestRelayRetransmitOnDrop: a burst window that drops every frame on
// 0→1 early in virtual time forces the relay to retransmit; the
// retransmits carry virtual timestamps past the window, so the put is
// delivered exactly once and the ack completes it.
func TestRelayRetransmitOnDrop(t *testing.T) {
	r, srcMD, srcEQ, tgtOff := relayRig(t)
	r.net.SetFaults(&simnet.FaultPlan{
		Seed: 5,
		Bursts: []simnet.Burst{{
			Link:   simnet.LinkKey{Src: 0, Dst: 1},
			From:   0,
			Until:  vtime.Time(20 * time.Microsecond),
			Faults: simnet.LinkFaults{Drop: 1},
		}},
	})
	r.nics[0].EnableReliability(RetryPolicy{Seed: 5})

	if _, err := srcMD.Put(0, 0, 64, 1, 5, 32, true, 1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, srcEQ, EvAck)
	if got := r.mems[1].Snapshot(tgtOff+32, 64); !bytes.Equal(got, bytes.Repeat([]byte{0xCD}, 64)) {
		t.Fatal("payload not deposited after retransmission")
	}
	if r.net.Retries.Value() == 0 {
		t.Fatal("drop burst survived without a single retransmit")
	}
	if r.net.FaultsDropped.Value() == 0 {
		t.Fatal("fault plan never dropped a frame")
	}
}

// TestRelayCorruptRejected: corrupted frames fail the payload checksum
// and are rejected silently (no ack), so the relay retransmits until a
// clean copy lands — the target memory never sees the corrupted bytes.
func TestRelayCorruptRejected(t *testing.T) {
	r, srcMD, srcEQ, tgtOff := relayRig(t)
	r.net.SetFaults(&simnet.FaultPlan{
		Seed: 17,
		Bursts: []simnet.Burst{{
			Link:   simnet.LinkKey{Src: 0, Dst: 1},
			From:   0,
			Until:  vtime.Time(20 * time.Microsecond),
			Faults: simnet.LinkFaults{Corrupt: 1},
		}},
	})
	r.nics[0].EnableReliability(RetryPolicy{Seed: 17})

	if _, err := srcMD.Put(0, 0, 64, 1, 5, 0, true, 2); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, srcEQ, EvAck)
	if got := r.mems[1].Snapshot(tgtOff, 64); !bytes.Equal(got, bytes.Repeat([]byte{0xCD}, 64)) {
		t.Fatal("target memory saw corrupted bytes")
	}
	if r.net.CorruptRejected.Value() == 0 {
		t.Fatal("no frame was checksum-rejected")
	}
	if r.net.Retries.Value() == 0 {
		t.Fatal("rejection without retransmission cannot have delivered")
	}
}

// TestRelayLinkFailureBudgetExhausted: a permanently dropping link
// exhausts the retry budget within bounded time; the failure handler
// fires with ErrLinkFailed and subsequent sends to the dead rank fail
// fast instead of queueing.
func TestRelayLinkFailureBudgetExhausted(t *testing.T) {
	r, srcMD, _, _ := relayRig(t)
	r.net.SetFaults(&simnet.FaultPlan{
		Seed:  9,
		Links: map[simnet.LinkKey]simnet.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
	})
	r.nics[0].EnableReliability(RetryPolicy{Seed: 9, Budget: 2})
	failed := make(chan error, 1)
	r.nics[0].SetLinkFailureHandler(func(dst int, at vtime.Time, err error) {
		if dst != 1 {
			t.Errorf("failure reported for rank %d, want 1", dst)
		}
		select {
		case failed <- err:
		default:
		}
	})

	if _, err := srcMD.Put(0, 0, 64, 1, 5, 0, true, 3); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-failed:
		if !errors.Is(err, ErrLinkFailed) {
			t.Fatalf("failure handler got %v, want ErrLinkFailed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retry budget never exhausted: link failure did not surface in bounded time")
	}
	if _, err := srcMD.Put(0, 0, 64, 1, 5, 0, true, 4); !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("send on a failed link returned %v, want ErrLinkFailed", err)
	}
}

// TestRelayDisabledSendUnchanged: without EnableReliability frames carry
// no relay sequence and no acks flow — the reliable-delivery machinery
// stays entirely out of the way.
func TestRelayDisabledSendUnchanged(t *testing.T) {
	r, srcMD, srcEQ, _ := relayRig(t)
	if r.nics[0].Reliable() {
		t.Fatal("relay enabled without EnableReliability")
	}
	if _, err := srcMD.Put(0, 0, 64, 1, 5, 0, true, 5); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, srcEQ, EvAck)
	if r.net.Retries.Value() != 0 || r.net.DupDropped.Value() != 0 {
		t.Fatal("relay counters moved with reliability disabled")
	}
}
