package portals

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Reliable delivery. simnet's FaultPlan can drop, duplicate, delay and
// corrupt wire messages; this relay restores the exactly-once, per-link
// FIFO view the protocol layers above were built on. The design follows
// the classic NIC-firmware reliability engines (SeaStar, Quadrics Elan):
//
//   - The origin stamps every tracked frame with a per-(src,dst) sequence
//     number (Message.RSeq) and a payload checksum (Message.Sum), keeps a
//     private copy of the payload, and retransmits on timeout with
//     exponential backoff + jitter until acknowledged or the retry budget
//     is exhausted.
//   - The receiver rejects corrupted frames by checksum (silently — the
//     origin retransmits an intact copy), acknowledges and deduplicates by
//     RSeq, and on ordered networks reassembles the per-link RSeq stream
//     so retransmission cannot reorder what the wire promised to order.
//   - Acknowledgements (KindRelAck) are themselves unreliable: a lost ack
//     costs one spurious retransmission, which the receiver dedups and
//     re-acks. Acks carry no payload, so payload corruption cannot touch
//     them.
//
// Reception is always on — any frame with RSeq != 0 is checksummed,
// deduplicated and acknowledged whether or not this rank enabled its own
// transmit relay. SPMD startup is not synchronized: a fast origin may
// have reliable frames in flight before the target's upper layers attach,
// and those frames must still be admitted. Transmission is opt-in via
// EnableReliability.
//
// Retransmission timers run in real time (a background ticker per NIC),
// but every retransmitted frame is stamped with a deterministic virtual
// send time: the original send time plus the accumulated virtual backoff.
// Virtual-time results therefore do not depend on the host scheduler,
// with one caveat documented in DESIGN.md §9: which retransmission
// attempt first survives the fault plan can vary run to run, so workloads
// validated under faults must converge independent of delivery order.

// ErrLinkFailed is the sentinel wrapped into every error produced by an
// exhausted retry budget: the relay declares the link down, fails the
// frames in flight on it, and rejects new sends to that rank.
var ErrLinkFailed = errors.New("link failed: retry budget exhausted")

// RetryPolicy tunes the transmit side of the reliable-delivery relay.
// Zero fields take the Default* constants.
type RetryPolicy struct {
	// Timeout is the virtual-time base retransmission timeout: attempt k
	// (counting from 0) is stamped Timeout·Backoff^k after the previous
	// transmission, plus jitter.
	Timeout time.Duration
	// Backoff is the exponential backoff factor (≥ 1).
	Backoff float64
	// Jitter is the maximum extra virtual delay per retransmission, as a
	// fraction of Timeout, drawn from the relay's seeded generator.
	Jitter float64
	// Budget is how many retransmissions the relay attempts before
	// declaring the link failed.
	Budget int
	// Window bounds how many out-of-order frames a receiver holds per
	// link while reassembling the RSeq stream on ordered networks.
	// Frames beyond the window are dropped unacknowledged (the origin
	// retransmits them once the gap heals).
	Window int
	// Seed seeds the jitter generator. runtime and rma default it to the
	// fault plan's seed so one seed reproduces a whole chaos run.
	Seed int64
}

// Defaults for zero RetryPolicy fields.
const (
	DefaultRetryTimeout = 50 * time.Microsecond
	DefaultRetryBackoff = 2.0
	DefaultRetryJitter  = 0.25
	DefaultRetryBudget  = 8
	DefaultRetryWindow  = 256
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = DefaultRetryTimeout
	}
	if p.Backoff < 1 {
		p.Backoff = DefaultRetryBackoff
	}
	if p.Jitter < 0 {
		p.Jitter = DefaultRetryJitter
	}
	if p.Budget <= 0 {
		p.Budget = DefaultRetryBudget
	}
	if p.Window <= 0 {
		p.Window = DefaultRetryWindow
	}
	return p
}

// castagnoli is the CRC-32C table used for payload checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the payload checksum the relay attaches to tracked
// frames (CRC-32C; 0 for an empty payload).
func Checksum(p []byte) uint32 {
	if len(p) == 0 {
		return 0
	}
	return crc32.Checksum(p, castagnoli)
}

// retransTick is the real-time pacing quantum of the retransmitter: due
// frames are (re)examined this often. It bounds how stale a timeout check
// can be, not the virtual-time stamps of retransmissions.
const retransTick = time.Millisecond

// retransRealBase is the real-time deadline of the first retransmission;
// attempt k waits retransRealBase·Backoff^k, capped at retransRealCap.
// Real deadlines only pace the host-time ticker — virtual stamps come
// from RetryPolicy.Timeout.
const (
	retransRealBase = 2 * time.Millisecond
	retransRealCap  = 100 * time.Millisecond
)

// txFrame is one unacknowledged tracked frame.
type txFrame struct {
	tmpl     simnet.Message // header template (payload stripped)
	payload  []byte         // private master copy of the payload
	vt       vtime.Time     // virtual send time of the latest transmission
	attempts int            // retransmissions so far
	due      time.Time      // real deadline of the next timeout check
}

// txLink is the transmit state toward one destination rank.
type txLink struct {
	nextSeq  uint64
	inflight map[uint64]*txFrame
	down     bool
}

// relay is a NIC's transmit-side reliability engine.
type relay struct {
	n   *NIC
	pol RetryPolicy

	mu    sync.Mutex //rmalint:lockrank 40
	rng   *rand.Rand // jitter draws; guarded by mu
	links map[int]*txLink
}

// dedupWindow tracks which RSeqs of one link have been delivered. It is
// compact — a contiguous base plus a sparse set above it — and safe
// across uint64 wraparound (comparisons are signed distances, so a
// window that straddles 2^64 keeps working; the fuzz test pins this
// against a map-based oracle).
type dedupWindow struct {
	// base: every RSeq in (base-2^63, base] has been delivered.
	base uint64
	// seen marks delivered RSeqs ahead of base.
	seen map[uint64]bool
}

// dup reports whether seq was already delivered.
func (w *dedupWindow) dup(seq uint64) bool {
	return int64(seq-w.base) <= 0 || w.seen[seq]
}

// admit records seq as delivered, folding the sparse set into base when
// the stream becomes contiguous. Callers check dup first.
func (w *dedupWindow) admit(seq uint64) {
	if seq == w.base+1 {
		w.base++
		for w.seen[w.base+1] {
			w.base++
			delete(w.seen, w.base)
		}
		return
	}
	if w.seen == nil {
		w.seen = make(map[uint64]bool)
	}
	w.seen[seq] = true
}

// rxLink is the receive state from one source rank.
type rxLink struct {
	// win dedups delivered RSeqs; on ordered networks the stream is
	// delivered contiguously so win.base alone carries the state.
	win dedupWindow
	// held parks out-of-order frames awaiting reassembly (ordered
	// networks only), keyed by RSeq.
	held map[uint64]*simnet.Message
}

// EnableReliability turns on the transmit relay: every subsequent
// NIC.Send/NIC.SendNIC is sequence-stamped, checksummed and retransmitted
// until acknowledged. The first call wins; later calls are no-ops (SPMD
// ranks may all pass the same policy). Without it the send path pays one
// atomic nil check and nothing else.
func (n *NIC) EnableReliability(pol RetryPolicy) {
	pol = pol.withDefaults()
	r := &relay{
		n:     n,
		pol:   pol,
		rng:   rand.New(rand.NewSource(pol.Seed + int64(n.ep.ID())*104729)),
		links: make(map[int]*txLink),
	}
	if n.relay.CompareAndSwap(nil, r) {
		go r.retransmitter()
	}
}

// Reliable reports whether the transmit relay is enabled.
func (n *NIC) Reliable() bool { return n.relay.Load() != nil }

// SetLinkFailureHandler installs the callback invoked (once per failed
// link, off the caller's goroutine) when a retry budget is exhausted.
// The layer above uses it to fail outstanding requests instead of
// waiting for acknowledgements that will never come.
func (n *NIC) SetLinkFailureHandler(h func(dst int, at vtime.Time, err error)) {
	n.linkFail.Store(&h)
}

// SetRetransmitObserver installs a callback invoked for every
// retransmitted frame (telemetry feeds it into the trace timeline).
func (n *NIC) SetRetransmitObserver(obs func(dst int, rseq uint64, attempt int, at vtime.Time)) {
	n.retransObs.Store(&obs)
}

// link returns (creating if needed) the transmit state for dst. Caller
// holds r.mu.
func (r *relay) link(dst int) *txLink {
	l := r.links[dst]
	if l == nil {
		l = &txLink{inflight: make(map[uint64]*txFrame)}
		r.links[dst] = l
	}
	return l
}

// send tracks m and transmits it, via the CPU injection path (viaNIC
// false: charges origin overhead and gap) or the NIC firmware path. The
// master payload copy is private to the relay, so callers may recycle
// m.Payload as soon as send returns, and retransmissions are immune to
// receiver-side buffer pooling.
func (r *relay) send(now vtime.Time, m *simnet.Message, viaNIC bool) (vtime.Time, error) {
	if m.Dst < 0 || m.Dst >= r.n.ep.Ranks() {
		return 0, fmt.Errorf("simnet: send to invalid rank %d (network has %d)", m.Dst, r.n.ep.Ranks())
	}
	r.mu.Lock()
	l := r.link(m.Dst)
	if l.down {
		r.mu.Unlock()
		return 0, fmt.Errorf("portals: send to rank %d: %w", m.Dst, ErrLinkFailed)
	}
	l.nextSeq++
	m.RSeq = l.nextSeq
	m.Sum = Checksum(m.Payload)
	f := &txFrame{
		tmpl:    *m,
		payload: append([]byte(nil), m.Payload...),
		due:     time.Now().Add(retransRealBase),
	}
	f.tmpl.Payload = nil
	l.inflight[m.RSeq] = f
	r.mu.Unlock()

	var at vtime.Time
	var err error
	if viaNIC {
		at, err = r.n.ep.SendNIC(now, m)
	} else {
		at, err = r.n.ep.Send(now, m)
	}
	r.mu.Lock()
	if err != nil {
		delete(l.inflight, m.RSeq)
		if l.nextSeq == m.RSeq {
			l.nextSeq-- // leave no RSeq gap for the receiver to wait on
		}
	} else {
		f.vt = m.SentAt
	}
	r.mu.Unlock()
	return at, err
}

// retransmitter is the relay's timeout engine: a real-time ticker that
// retransmits overdue frames and declares links failed when budgets run
// out. It exits when the NIC stops.
func (r *relay) retransmitter() {
	t := time.NewTicker(retransTick)
	defer t.Stop()
	for {
		select {
		case <-r.n.quit:
			return
		case now := <-t.C:
			r.tick(now)
		}
	}
}

// realDeadline returns the real-time wait before timeout check k+1.
func (r *relay) realDeadline(attempts int) time.Duration {
	d := time.Duration(float64(retransRealBase) * math.Pow(r.pol.Backoff, float64(attempts)))
	if d > retransRealCap || d <= 0 {
		d = retransRealCap
	}
	return d
}

type resendItem struct {
	m  *simnet.Message
	vt vtime.Time
}

type failedLink struct {
	dst int
	at  vtime.Time
}

// tick scans the inflight tables for overdue frames. Retransmissions are
// built under the lock but injected outside it (simnet sends can block on
// back-pressure).
func (r *relay) tick(now time.Time) {
	var resends []resendItem
	var failures []failedLink
	net := r.n.ep.Network()

	r.mu.Lock()
	for dst, l := range r.links {
		if l.down {
			continue
		}
		for seq, f := range l.inflight {
			if now.Before(f.due) {
				continue
			}
			if f.attempts >= r.pol.Budget {
				l.down = true
				l.inflight = make(map[uint64]*txFrame)
				failures = append(failures, failedLink{dst: dst, at: f.vt})
				break
			}
			// Virtual stamp: previous transmission plus the policy's
			// backed-off timeout plus seeded jitter.
			step := time.Duration(float64(r.pol.Timeout) * math.Pow(r.pol.Backoff, float64(f.attempts)))
			step += time.Duration(r.rng.Float64() * r.pol.Jitter * float64(r.pol.Timeout))
			f.attempts++
			f.vt += vtime.Time(step)
			f.due = now.Add(r.realDeadline(f.attempts))
			c := f.tmpl
			c.RSeq = seq
			c.Payload = append([]byte(nil), f.payload...)
			resends = append(resends, resendItem{m: &c, vt: f.vt})
			net.Retries.Inc()
			net.RetransmitBytes.Add(int64(len(c.Payload)))
			if obs := r.n.retransObs.Load(); obs != nil {
				(*obs)(dst, seq, f.attempts, f.vt)
			}
		}
	}
	r.mu.Unlock()

	for _, it := range resends {
		// Retransmission is NIC firmware work: no origin CPU cost.
		if _, err := r.n.ep.SendNIC(it.vt, it.m); err != nil {
			return // network shutting down
		}
	}
	for _, fl := range failures {
		err := fmt.Errorf("portals: rank %d to rank %d: %w", r.n.ep.ID(), fl.dst, ErrLinkFailed)
		if h := r.n.linkFail.Load(); h != nil {
			(*h)(fl.dst, fl.at, err)
		}
	}
}

// handleAck processes one KindRelAck on the agent goroutine. Hdr[0] is
// the selective ack (the RSeq that triggered it); Hdr[1] is the
// receiver's cumulative base — everything at or below it is delivered.
func (r *relay) handleAck(m *simnet.Message) {
	sel, cum := m.Hdr[0], m.Hdr[1]
	r.mu.Lock()
	if l := r.links[m.Src]; l != nil {
		delete(l.inflight, sel)
		for seq := range l.inflight {
			if seq <= cum {
				delete(l.inflight, seq)
			}
		}
	}
	r.mu.Unlock()
}

// sendRelAck acknowledges a tracked frame: selective (the frame's RSeq)
// plus cumulative (the link's contiguous base). Sent as NIC firmware
// work at the frame's arrival time; best-effort — a lost ack costs one
// retransmission.
func (n *NIC) sendRelAck(src int, sel, cum uint64, at vtime.Time) {
	ack := &simnet.Message{Dst: src, Kind: KindRelAck}
	ack.Hdr[0] = sel
	ack.Hdr[1] = cum
	_, _ = n.ep.SendNIC(at, ack)
}

// rxAdmit filters one tracked inbound frame on the agent goroutine:
// checksum, dedup, ack, and (on ordered networks) RSeq reassembly.
// Admitted frames continue to kind dispatch exactly once, in RSeq order
// when the network promises order.
func (n *NIC) rxAdmit(m *simnet.Message) {
	if m.Sum != Checksum(m.Payload) {
		// Reject silently: no ack, so the origin retransmits intact bytes.
		n.ep.Network().CorruptRejected.Inc()
		return
	}
	if n.rx == nil {
		n.rx = make(map[int]*rxLink)
	}
	l := n.rx[m.Src]
	if l == nil {
		l = &rxLink{}
		n.rx[m.Src] = l
	}
	if !n.ep.Ordered() {
		// Unordered network: dedup only; the layers above already cope
		// with arbitrary arrival order.
		if l.win.dup(m.RSeq) {
			n.ep.Network().DupDropped.Inc()
			n.sendRelAck(m.Src, m.RSeq, l.win.base, m.ArriveAt) // re-ack: first ack may be lost
			return
		}
		l.win.admit(m.RSeq)
		n.sendRelAck(m.Src, m.RSeq, l.win.base, m.ArriveAt)
		n.dispatchKind(m)
		return
	}
	// Ordered network: deliver the RSeq stream contiguously so
	// retransmission cannot break the wire's FIFO promise.
	if l.win.dup(m.RSeq) || l.held[m.RSeq] != nil {
		n.ep.Network().DupDropped.Inc()
		n.sendRelAck(m.Src, m.RSeq, l.win.base, m.ArriveAt)
		return
	}
	if m.RSeq != l.win.base+1 {
		if len(l.held) >= n.rxWindow() {
			// Reassembly window full: drop unacknowledged; the origin
			// retransmits after the gap heals.
			return
		}
		if l.held == nil {
			l.held = make(map[uint64]*simnet.Message)
		}
		l.held[m.RSeq] = m
		n.sendRelAck(m.Src, m.RSeq, l.win.base, m.ArriveAt)
		return
	}
	l.win.base++
	n.sendRelAck(m.Src, m.RSeq, l.win.base, m.ArriveAt)
	n.dispatchKind(m)
	for {
		h := l.held[l.win.base+1]
		if h == nil {
			return
		}
		delete(l.held, l.win.base+1)
		l.win.base++
		n.dispatchKind(h)
	}
}

// rxWindow returns the receiver reassembly bound: the local policy's if a
// relay is enabled, the default otherwise (reception is always on).
func (n *NIC) rxWindow() int {
	if r := n.relay.Load(); r != nil {
		return r.pol.Window
	}
	return DefaultRetryWindow
}

// LinkStatus is a point-in-time observation of one transmit link's
// reliability state, for health views and postmortems.
type LinkStatus struct {
	// Peer is the destination rank.
	Peer int
	// Down reports an exhausted retry budget (the link was declared
	// failed and will accept no further sends).
	Down bool
	// Inflight counts unacknowledged frames currently tracked.
	Inflight int
	// Attempts is the worst per-frame retransmission count in flight —
	// how close the hottest frame is to the retry budget.
	Attempts int
	// NextSeq is the next relay sequence number the link will stamp.
	NextSeq uint64
}

// RelayStatus snapshots every transmit link's reliability state, sorted
// by peer rank. It returns nil when reliable delivery is not enabled.
func (n *NIC) RelayStatus() []LinkStatus {
	r := n.relay.Load()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]LinkStatus, 0, len(r.links))
	for dst, l := range r.links {
		st := LinkStatus{Peer: dst, Down: l.down, Inflight: len(l.inflight), NextSeq: l.nextSeq + 1}
		for _, f := range l.inflight {
			if f.attempts > st.Attempts {
				st.Attempts = f.attempts
			}
		}
		out = append(out, st)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// RetryBudget reports the relay's per-frame retransmission budget, or 0
// when reliable delivery is not enabled.
func (n *NIC) RetryBudget() int {
	if r := n.relay.Load(); r != nil {
		return r.pol.Budget
	}
	return 0
}
