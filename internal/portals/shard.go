package portals

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
)

// ShardPool drains per-shard task queues with a bounded worker pool. It is
// the target-side half of the sharded apply engine: the NIC rx path (via
// the core layer's routing) hands each decoded operation to one shard, and
// every shard applies its tasks strictly in hand-off order on at most one
// worker at a time. Operations that landed in different shards run in
// parallel; the router above guarantees that any two operations touching a
// common byte land in the same shard (or are ticketed, see ShardTask.After),
// so per-shard FIFO is enough for byte-exact convergence with the serial
// engine.
//
// Worker w's home shards are {w, w+W, w+2W, ...}; a worker with idle home
// shards steals from the others, so a skewed workload still saturates the
// pool. Each worker owns one vtime.WorkLane, and every task's modelled
// apply cost is charged to its shard's HOME worker's lane at submit time —
// submission is single-threaded (the NIC agent), so the model series is
// deterministic and independent of host scheduling, while stealing remains
// a wall-clock optimization that never moves virtual time. The per-worker
// lanes are what make the E14 model series improve as workers are added.
type ShardPool struct {
	shards  []shardQ
	lanes   []vtime.WorkLane
	workers int
	softCap int

	mu      sync.Mutex
	cond    *sync.Cond
	pending int // tasks queued across all shards
	closed  bool
	wg      sync.WaitGroup

	onPanic atomic.Pointer[func(shard int, recovered any)]

	// Panics counts recovered worker panics (see SetPanicHandler).
	Panics stats.Counter
}

// ShardTask is one unit of target-side apply work.
type ShardTask struct {
	// Ready is the virtual time the operation's inputs are available
	// (delivery completion at the NIC).
	Ready vtime.Time
	// Cost is the modelled apply duration charged to the executing
	// worker's lane.
	Cost vtime.Duration
	// After, when non-nil, is a per-shard enqueue-count ticket (from
	// Snapshot): the task may not run until every shard has completed at
	// least that many tasks. The executing worker helps drain lagging
	// shards while it waits, so tickets cannot deadlock the pool. The
	// router uses this for designated-shard (spanning/ordered) operations
	// that must observe everything routed before them.
	After []int64
	// Run applies the operation; end is the home-lane completion time,
	// fixed at submit.
	Run func(end vtime.Time)

	// end is the modelled completion time, computed against the shard's
	// home worker lane when the task is submitted.
	end vtime.Time
}

// shardQ is one shard's FIFO plus its per-shard telemetry cells.
type shardQ struct {
	q    []ShardTask
	head int
	// busy marks a shard whose head task is executing: a shard is drained
	// by at most one worker at a time, preserving apply order within it.
	busy bool
	enq  int64 // tasks ever queued (guarded by pool mu)
	done atomic.Int64

	stats ShardStats
}

// ShardStats are one shard's telemetry cells, registered by the layer
// above under shard.* metric names.
type ShardStats struct {
	// Depth is the shard's current queue occupancy.
	Depth stats.Gauge
	// Tasks counts tasks this shard has completed.
	Tasks stats.Counter
	// Steals counts tasks of this shard executed by a non-home worker.
	Steals stats.Counter
	// Overflow counts enqueues that found the shard above its soft cap.
	Overflow stats.Counter
	// ApplyLatency observes end-ready per task, in virtual nanoseconds.
	ApplyLatency stats.Histogram
}

// shardSoftCap is the queue depth past which Overflow is counted. Queues
// are unbounded (dropping an apply would break completion counting); the
// counter exists so saturation is visible in telemetry.
const shardSoftCap = 1024

// NewShardPool creates a pool with the given shard and worker counts and
// starts the workers. Workers are capped at the shard count: a shard is
// drained by one worker at a time, so extra workers could never run.
func NewShardPool(shards, workers int) *ShardPool {
	if shards < 1 {
		shards = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	p := &ShardPool{
		shards:  make([]shardQ, shards),
		lanes:   make([]vtime.WorkLane, workers),
		workers: workers,
		softCap: shardSoftCap,
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			// Label shard workers so profiles attribute apply work to the
			// pool (go tool pprof -tagfocus role=shard-worker).
			pprof.Do(context.Background(), pprof.Labels("role", "shard-worker", "worker", strconv.Itoa(w)), func(context.Context) {
				p.worker(w)
			})
		}(w)
	}
	return p
}

// Shards returns the shard count.
func (p *ShardPool) Shards() int { return len(p.shards) }

// Workers returns the worker count.
func (p *ShardPool) Workers() int { return p.workers }

// Stats returns shard s's telemetry cells.
func (p *ShardPool) Stats(s int) *ShardStats { return &p.shards[s].stats }

// SetPanicHandler installs fn, called (once per event, on the worker that
// recovered it) when a task panics. The task's completion bookkeeping
// still runs, so the pool itself stays live.
func (p *ShardPool) SetPanicHandler(fn func(shard int, recovered any)) {
	p.onPanic.Store(&fn)
}

// Snapshot returns the current per-shard enqueue counts, for use as a
// ShardTask.After ticket. Routing is single-threaded (the NIC agent), so a
// snapshot taken while routing covers exactly the operations routed before
// the ticketed one.
func (p *ShardPool) Snapshot() []int64 {
	p.mu.Lock()
	out := make([]int64, len(p.shards))
	for i := range p.shards {
		out[i] = p.shards[i].enq
	}
	p.mu.Unlock()
	return out
}

// Submit queues t on shard s, fixing its modelled completion time against
// shard s's home worker lane. After Close the task runs inline on the
// caller so completion signals are never lost during teardown.
func (p *ShardPool) Submit(s int, t ShardTask) {
	p.mu.Lock()
	t.end = p.lanes[s%p.workers].Complete(t.Ready, t.Cost)
	if p.closed {
		p.mu.Unlock()
		p.execute(0, s, t)
		return
	}
	q := &p.shards[s]
	q.q = append(q.q, t)
	q.enq++
	q.stats.Depth.Add(1)
	if len(q.q)-q.head > p.softCap {
		q.stats.Overflow.Inc()
	}
	p.pending++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Close stops the workers after all queued tasks have been applied and
// waits for them to exit. Close is idempotent.
func (p *ShardPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker drains shards until the pool is closed and empty. Home shards
// (s ≡ w mod workers) are preferred; otherwise the worker steals.
func (p *ShardPool) worker(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		s := p.pickLocked(w)
		if s < 0 {
			if p.closed && p.pending == 0 {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		t := p.popLocked(s)
		p.mu.Unlock()
		p.execute(w, s, t)
		p.mu.Lock()
		p.shards[s].busy = false
		p.cond.Broadcast()
	}
}

// pickLocked returns an idle shard with queued work, home shards first, or
// -1. Caller holds p.mu.
func (p *ShardPool) pickLocked(w int) int {
	for s := w; s < len(p.shards); s += p.workers {
		if q := &p.shards[s]; !q.busy && q.head < len(q.q) {
			return s
		}
	}
	for s := range p.shards {
		if q := &p.shards[s]; !q.busy && q.head < len(q.q) {
			return s
		}
	}
	return -1
}

// popLocked removes shard s's head task and marks the shard busy. Caller
// holds p.mu and has checked the shard is idle and non-empty.
func (p *ShardPool) popLocked(s int) ShardTask {
	q := &p.shards[s]
	t := q.q[q.head]
	q.q[q.head] = ShardTask{}
	q.head++
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
	q.busy = true
	q.stats.Depth.Add(-1)
	p.pending--
	return t
}

// execute runs one task on worker w: satisfy its ticket (helping drain
// lagging shards), run with panic protection, and record completion. The
// task's modelled end time was fixed at submit.
func (p *ShardPool) execute(w, s int, t ShardTask) {
	if t.After != nil {
		p.drainTo(w, t.After)
	}
	p.runProtected(s, t.Run, t.end)
	q := &p.shards[s]
	q.done.Add(1)
	q.stats.Tasks.Inc()
	if s%p.workers != w {
		q.stats.Steals.Inc()
	}
	q.stats.ApplyLatency.Observe(int64(t.end - t.Ready))
}

// drainTo blocks until every shard's completed count reaches the ticket,
// executing queued tasks from lagging shards itself while it waits.
// Tickets only reference operations routed strictly earlier, so the
// waits-for relation follows routing order and cannot cycle; helping keeps
// a single worker sufficient for progress.
func (p *ShardPool) drainTo(w int, after []int64) {
	p.mu.Lock()
	for {
		lag := -1
		satisfied := true
		for s := range p.shards {
			if s >= len(after) {
				break
			}
			if p.shards[s].done.Load() >= after[s] {
				continue
			}
			satisfied = false
			if q := &p.shards[s]; !q.busy && q.head < len(q.q) {
				lag = s
				break
			}
		}
		if satisfied {
			p.mu.Unlock()
			return
		}
		if lag < 0 {
			// The missing tasks are in flight on other workers; their
			// completion broadcasts.
			p.cond.Wait()
			continue
		}
		t := p.popLocked(lag)
		p.mu.Unlock()
		p.execute(w, lag, t)
		p.mu.Lock()
		p.shards[lag].busy = false
		p.cond.Broadcast()
	}
}

// runProtected runs fn(end), converting a panic into the pool's panic
// handler instead of crashing the process.
func (p *ShardPool) runProtected(s int, fn func(vtime.Time), end vtime.Time) {
	defer func() {
		if r := recover(); r != nil {
			p.Panics.Inc()
			if h := p.onPanic.Load(); h != nil {
				(*h)(s, r)
			}
		}
	}()
	fn(end)
}
