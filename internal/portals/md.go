package portals

import (
	"fmt"
	"sync/atomic"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// EventType identifies a Portals event.
type EventType uint8

const (
	// EvSendEnd reports local completion of a Put at the origin: the data
	// has left the origin buffer, which may be reused.
	EvSendEnd EventType = iota + 1
	// EvAck reports remote completion of a Put at the origin: the data has
	// been deposited in the target's memory.
	EvAck
	// EvPutEnd reports, at the target, that an incoming Put has been
	// deposited into the memory descriptor.
	EvPutEnd
	// EvGetEnd reports, at the target, that an incoming Get has read the
	// memory descriptor.
	EvGetEnd
	// EvReplyEnd reports, at the origin, that the data requested by a Get
	// has arrived in the origin memory descriptor.
	EvReplyEnd
)

// String returns the event type's Portals-style name.
func (t EventType) String() string {
	switch t {
	case EvSendEnd:
		return "SEND_END"
	case EvAck:
		return "ACK"
	case EvPutEnd:
		return "PUT_END"
	case EvGetEnd:
		return "GET_END"
	case EvReplyEnd:
		return "REPLY_END"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Event is one entry of an event queue.
type Event struct {
	// Type is the event type.
	Type EventType
	// MD is the memory descriptor the event concerns.
	MD *MD
	// Peer is the other rank involved (target for origin events, initiator
	// for target events).
	Peer int
	// Offset and Length locate the affected bytes within the MD.
	Offset, Length int
	// UserHdr is the 64-bit header data the initiator attached.
	UserHdr uint64
	// At is the virtual time the event occurred.
	At vtime.Time
}

// EQ is a Portals event queue.
type EQ struct {
	ch       chan Event
	overflow atomic.Bool
}

// DefaultEQDepth is the event queue capacity used by NewEQ(0).
const DefaultEQDepth = 1024

// NewEQ returns an event queue with the given capacity (0 means
// DefaultEQDepth).
func NewEQ(depth int) *EQ {
	if depth <= 0 {
		depth = DefaultEQDepth
	}
	return &EQ{ch: make(chan Event, depth)}
}

// Wait blocks until an event is available and returns it.
func (q *EQ) Wait() Event { return <-q.ch }

// Poll returns the next event without blocking; ok is false if none is
// pending.
func (q *EQ) Poll() (ev Event, ok bool) {
	select {
	case ev = <-q.ch:
		return ev, true
	default:
		return Event{}, false
	}
}

// Chan exposes the queue for select-based consumers.
func (q *EQ) Chan() <-chan Event { return q.ch }

// Overflowed reports whether any event was dropped because the queue was
// full (the Portals EQ-overflow error state).
func (q *EQ) Overflowed() bool { return q.overflow.Load() }

// post enqueues ev, recording overflow instead of blocking: the poster is
// the rank's only delivery thread and must never stall on a slow consumer.
func (q *EQ) post(ev Event) {
	select {
	case q.ch <- ev:
	default:
		q.overflow.Store(true)
	}
}

// MDOptions selects what remote operations a memory descriptor permits.
type MDOptions uint8

const (
	// MDPut permits incoming put operations.
	MDPut MDOptions = 1 << iota
	// MDGet permits incoming get operations.
	MDGet
)

// MD is a memory descriptor: a region of the rank's memory bound for
// communication, with an optional event queue.
type MD struct {
	nic    *NIC
	handle uint64
	region memsim.Region
	eq     *EQ
	opts   MDOptions
}

// Region returns the memory region the MD covers.
func (md *MD) Region() memsim.Region { return md.region }

// EQ returns the MD's event queue (may be nil).
func (md *MD) EQ() *EQ { return md.eq }

// AttachMD binds a region of the rank's memory as a memory descriptor.
// eq may be nil if the caller does not want events.
func (n *NIC) AttachMD(region memsim.Region, eq *EQ, opts MDOptions) *MD {
	n.mu.Lock()
	defer n.mu.Unlock()
	md := &MD{
		nic:    n,
		handle: uint64(len(n.mds)),
		region: region,
		eq:     eq,
		opts:   opts,
	}
	n.mds = append(n.mds, md)
	return md
}

// Expose binds md to portal-table index idx, making it addressable by
// remote Put/Get operations naming that index.
func (n *NIC) Expose(idx int, md *MD) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.table[idx]; dup {
		panic(fmt.Sprintf("portals: rank %d: portal index %d already exposed", n.ep.ID(), idx))
	}
	n.table[idx] = md
}

// Unexpose removes the binding of portal-table index idx.
func (n *NIC) Unexpose(idx int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.table, idx)
}

func (n *NIC) lookupPortal(idx int) *MD {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table[idx]
}

func (n *NIC) lookupMD(handle uint64) *MD {
	n.mu.Lock()
	defer n.mu.Unlock()
	if handle >= uint64(len(n.mds)) {
		return nil
	}
	return n.mds[handle]
}

// Header word layout for portals messages.
const (
	hdrMD      = 0 // origin MD handle
	hdrMDOff   = 1 // origin MD offset (get reply placement)
	hdrPortal  = 2 // target portal index
	hdrTgtOff  = 3 // target offset within the exposed MD
	hdrLen     = 4 // length for get requests
	hdrUser    = 5 // 64-bit user header data
	flagAckReq = 1 // Flags bit: put requests an acknowledgement
)

// Put transfers n bytes from the MD at mdOff to the memory descriptor
// exposed at (target, ptlIndex)+targetOff, starting at virtual time now.
// If ack is true the target acknowledges the deposit and an EvAck event is
// delivered to the MD's event queue; an EvSendEnd event reports local
// completion either way. Put returns the local-completion virtual time.
func (md *MD) Put(now vtime.Time, mdOff, n int, target, ptlIndex, targetOff int, ack bool, userHdr uint64) (vtime.Time, error) {
	if !md.region.Contains(mdOff, n) {
		return 0, fmt.Errorf("portals: put source [%d,%d) outside MD of %d bytes", mdOff, mdOff+n, md.region.Size)
	}
	buf := make([]byte, n)
	if err := md.nic.mem.RemoteRead(md.region.Offset+mdOff, buf); err != nil {
		return 0, err
	}
	m := &simnet.Message{
		Dst:     target,
		Kind:    KindPtlPut,
		Payload: buf,
	}
	m.Hdr[hdrMD] = md.handle
	m.Hdr[hdrPortal] = uint64(ptlIndex)
	m.Hdr[hdrTgtOff] = uint64(targetOff)
	m.Hdr[hdrUser] = userHdr
	if ack {
		m.Flags |= flagAckReq
	}
	if _, err := md.nic.Send(now, m); err != nil {
		return 0, err
	}
	if md.eq != nil {
		md.eq.post(Event{Type: EvSendEnd, MD: md, Peer: target, Offset: mdOff, Length: n, UserHdr: userHdr, At: m.SentAt})
	}
	return m.SentAt, nil
}

// Get requests n bytes from the memory descriptor exposed at
// (target, ptlIndex)+targetOff into the MD at mdOff, starting at virtual
// time now. An EvReplyEnd event on the MD's event queue reports arrival.
func (md *MD) Get(now vtime.Time, mdOff, n int, target, ptlIndex, targetOff int, userHdr uint64) error {
	if !md.region.Contains(mdOff, n) {
		return fmt.Errorf("portals: get destination [%d,%d) outside MD of %d bytes", mdOff, mdOff+n, md.region.Size)
	}
	m := &simnet.Message{
		Dst:  target,
		Kind: KindPtlGet,
	}
	m.Hdr[hdrMD] = md.handle
	m.Hdr[hdrMDOff] = uint64(mdOff)
	m.Hdr[hdrPortal] = uint64(ptlIndex)
	m.Hdr[hdrTgtOff] = uint64(targetOff)
	m.Hdr[hdrLen] = uint64(n)
	m.Hdr[hdrUser] = userHdr
	_, err := md.nic.Send(now, m)
	return err
}

// registerPortalsHandlers installs the protocol handlers for put, ack, get
// and reply messages on the NIC dispatch table.
func (n *NIC) registerPortalsHandlers() {
	n.handlers[KindPtlPut] = n.handlePut
	n.handlers[KindPtlAck] = n.handleAck
	n.handlers[KindPtlGet] = n.handleGet
	n.handlers[KindPtlReply] = n.handleReply
}

func (n *NIC) handlePut(m *simnet.Message, at vtime.Time) {
	md := n.lookupPortal(int(m.Hdr[hdrPortal]))
	if md == nil || md.opts&MDPut == 0 {
		n.BadReq.Inc()
		return
	}
	off := int(m.Hdr[hdrTgtOff])
	if !md.region.Contains(off, len(m.Payload)) {
		n.BadReq.Inc()
		return
	}
	if err := n.mem.RemoteWrite(md.region.Offset+off, m.Payload); err != nil {
		n.BadReq.Inc()
		return
	}
	if md.eq != nil {
		md.eq.post(Event{Type: EvPutEnd, MD: md, Peer: m.Src, Offset: off, Length: len(m.Payload), UserHdr: m.Hdr[hdrUser], At: at})
	}
	if m.Flags&flagAckReq != 0 {
		ack := &simnet.Message{Dst: m.Src, Kind: KindPtlAck}
		ack.Hdr[hdrMD] = m.Hdr[hdrMD]
		ack.Hdr[hdrTgtOff] = m.Hdr[hdrTgtOff]
		ack.Hdr[hdrLen] = uint64(len(m.Payload))
		ack.Hdr[hdrUser] = m.Hdr[hdrUser]
		if n.cfg.HardwareAcks {
			// The NIC generates the acknowledgement: wire time only.
			_, _ = n.SendNIC(at, ack)
		} else {
			// Software echo: charged like any CPU-injected message.
			n.SoftAcks.Inc()
			_, _ = n.Send(at, ack)
		}
	}
}

func (n *NIC) handleAck(m *simnet.Message, at vtime.Time) {
	md := n.lookupMD(m.Hdr[hdrMD])
	if md == nil {
		n.BadReq.Inc()
		return
	}
	if md.eq != nil {
		md.eq.post(Event{Type: EvAck, MD: md, Peer: m.Src, Offset: int(m.Hdr[hdrTgtOff]), Length: int(m.Hdr[hdrLen]), UserHdr: m.Hdr[hdrUser], At: at})
	}
}

func (n *NIC) handleGet(m *simnet.Message, at vtime.Time) {
	md := n.lookupPortal(int(m.Hdr[hdrPortal]))
	if md == nil || md.opts&MDGet == 0 {
		n.BadReq.Inc()
		return
	}
	off := int(m.Hdr[hdrTgtOff])
	length := int(m.Hdr[hdrLen])
	if !md.region.Contains(off, length) {
		n.BadReq.Inc()
		return
	}
	buf := make([]byte, length)
	if err := n.mem.RemoteRead(md.region.Offset+off, buf); err != nil {
		n.BadReq.Inc()
		return
	}
	if md.eq != nil {
		md.eq.post(Event{Type: EvGetEnd, MD: md, Peer: m.Src, Offset: off, Length: length, UserHdr: m.Hdr[hdrUser], At: at})
	}
	reply := &simnet.Message{Dst: m.Src, Kind: KindPtlReply, Payload: buf}
	reply.Hdr[hdrMD] = m.Hdr[hdrMD]
	reply.Hdr[hdrMDOff] = m.Hdr[hdrMDOff]
	reply.Hdr[hdrUser] = m.Hdr[hdrUser]
	// Get replies are produced by the NIC (Portals firmware), not the
	// target CPU.
	_, _ = n.SendNIC(at, reply)
}

func (n *NIC) handleReply(m *simnet.Message, at vtime.Time) {
	md := n.lookupMD(m.Hdr[hdrMD])
	if md == nil {
		n.BadReq.Inc()
		return
	}
	off := int(m.Hdr[hdrMDOff])
	if !md.region.Contains(off, len(m.Payload)) {
		n.BadReq.Inc()
		return
	}
	if err := n.mem.RemoteWrite(md.region.Offset+off, m.Payload); err != nil {
		n.BadReq.Inc()
		return
	}
	if md.eq != nil {
		md.eq.post(Event{Type: EvReplyEnd, MD: md, Peer: m.Src, Offset: off, Length: len(m.Payload), UserHdr: m.Hdr[hdrUser], At: at})
	}
}
