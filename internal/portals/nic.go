// Package portals implements a Portals-3-like communication layer over the
// simulated network, plus the per-rank communication agent the rest of the
// stack shares.
//
// The paper's prototype (Section V-A) was "written using the Portals
// communication library" on the Cray XT5, exploiting Portals' event-queue
// mechanism to detect remote completion of a message. This package
// reproduces the pieces the prototype depends on:
//
//   - Memory descriptors (MD) binding a region of a rank's memory for
//     remote access, with an optional event queue.
//   - Event queues (EQ) delivering SEND_END (local completion), ACK
//     (remote completion), PUT_END/GET_END (target side), and REPLY_END.
//   - Put and Get operations with an optional acknowledgement request.
//
// It also hosts the NIC: one goroutine per rank that consumes the rank's
// delivery queue and dispatches by message kind. That goroutine is the
// paper's "implicit communication thread" — higher layers (the strawman
// RMA core, MPI-2 RMA, ARMCI, GASNet, the MPI-like runtime) register
// handlers for their own message kinds on it.
//
// A NIC can be configured without hardware ACK generation (HardwareAcks =
// false), modelling networks that can order messages but cannot report
// remote completion; the put acknowledgement then degrades to a software
// echo injected through the target's send path, which is exactly the
// "slight penalty" the paper predicts (experiment E4).
package portals

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
)

// Handler processes one incoming message on the NIC agent goroutine.
// at is the virtual time the NIC finished delivering the message (arrival
// plus per-message overhead). Handlers must not block indefinitely: they
// run on the rank's only delivery thread.
type Handler func(m *simnet.Message, at vtime.Time)

// Config configures a NIC.
type Config struct {
	// HardwareAcks selects whether the NIC generates put acknowledgements
	// itself (Portals-on-SeaStar behaviour). When false, acknowledgements
	// are software echoes injected through the target's ordinary send
	// path, costing target CPU overhead and injection gap.
	HardwareAcks bool
}

// NIC is one rank's network interface plus its communication agent.
type NIC struct {
	ep  *simnet.Endpoint
	mem *memsim.Memory
	cfg Config

	// cpu is the rank's virtual CPU clock: the latest virtual time the
	// rank's user code has observed. Blocking calls advance it.
	cpu vtime.Clock

	mu       sync.Mutex
	handlers map[uint8]Handler
	// pending holds messages that arrived before their kind's handler was
	// registered: rank startup is not synchronized, so a fast origin can
	// have traffic in flight before the target's upper layers attach.
	// RegisterHandler drains a kind's backlog in arrival order.
	pending map[uint8][]*simnet.Message
	mds     []*MD
	table   map[int]*MD // portal index -> MD exposed for remote access

	quit chan struct{}
	done chan struct{}

	// relay is the transmit-side reliability engine (nil until
	// EnableReliability); rx is the always-on receive-side state, touched
	// only on the agent goroutine. linkFail and retransObs are the
	// optional callbacks the layer above installs (see relay.go).
	relay      atomic.Pointer[relay]
	rx         map[int]*rxLink
	linkFail   atomic.Pointer[func(dst int, at vtime.Time, err error)]
	retransObs atomic.Pointer[func(dst int, rseq uint64, attempt int, at vtime.Time)]

	// shardPool is the target-side sharded apply pool (nil until
	// EnableSharding); the core layer routes decoded operations into it
	// from this NIC's rx path.
	shardPool atomic.Pointer[ShardPool]

	// SoftAcks counts acknowledgements that had to be sent in software.
	SoftAcks stats.Counter
	// BadReq counts protocol violations observed by this rank (unknown
	// portal index, out-of-bounds access, disallowed operation).
	BadReq stats.Counter
	// Delivered and DeliveredBytes count messages (and their payload bytes)
	// this NIC handed to a handler.
	Delivered      stats.Counter
	DeliveredBytes stats.Counter
	// Parked counts messages that arrived before their kind's handler was
	// registered and had to wait in the pending backlog.
	Parked stats.Counter
}

// NewNIC binds a NIC to an endpoint and a rank memory and starts its agent.
func NewNIC(ep *simnet.Endpoint, mem *memsim.Memory, cfg Config) *NIC {
	n := &NIC{
		ep:       ep,
		mem:      mem,
		cfg:      cfg,
		handlers: make(map[uint8]Handler),
		pending:  make(map[uint8][]*simnet.Message),
		table:    make(map[int]*MD),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	n.registerPortalsHandlers()
	go func() {
		// Label the delivery agent so profiles separate NIC work from
		// rank compute (go tool pprof -tagfocus role=nic-agent).
		pprof.Do(context.Background(), pprof.Labels("rank", strconv.Itoa(ep.ID()), "role", "nic-agent"), func(context.Context) {
			n.agent()
		})
	}()
	return n
}

// Rank returns the NIC's rank id.
func (n *NIC) Rank() int { return n.ep.ID() }

// Mem returns the rank's memory.
func (n *NIC) Mem() *memsim.Memory { return n.mem }

// Endpoint returns the underlying network endpoint.
func (n *NIC) Endpoint() *simnet.Endpoint { return n.ep }

// CPU returns the rank's virtual CPU clock.
func (n *NIC) CPU() *vtime.Clock { return &n.cpu }

// Now returns the rank's current virtual time.
func (n *NIC) Now() vtime.Time { return n.cpu.Now() }

// HardwareAcks reports whether the NIC generates acknowledgements itself.
func (n *NIC) HardwareAcks() bool { return n.cfg.HardwareAcks }

// RegisterHandler installs h for message kind k and delivers, in arrival
// order, any messages of that kind that arrived before registration.
// Registering a kind twice panics: kinds are statically partitioned
// between layers (see kinds.go).
func (n *NIC) RegisterHandler(k uint8, h Handler) {
	n.mu.Lock()
	if _, dup := n.handlers[k]; dup {
		n.mu.Unlock()
		panic(fmt.Sprintf("portals: duplicate handler for kind %d on rank %d", k, n.ep.ID()))
	}
	n.handlers[k] = h
	// Drain the backlog one message at a time: dispatch keeps parking new
	// arrivals of this kind while a backlog exists, so per-kind delivery
	// order is preserved even against the concurrent agent.
	for len(n.pending[k]) > 0 {
		m := n.pending[k][0]
		n.pending[k] = n.pending[k][1:]
		n.mu.Unlock()
		n.deliver(h, m)
		n.mu.Lock()
	}
	delete(n.pending, k)
	n.mu.Unlock()
}

// Send injects m at virtual time now and returns its arrival time at the
// target NIC. With the reliable-delivery relay enabled the frame is
// tracked and retransmitted until acknowledged; a send to a failed link
// returns an error wrapping ErrLinkFailed.
func (n *NIC) Send(now vtime.Time, m *simnet.Message) (vtime.Time, error) {
	if r := n.relay.Load(); r != nil {
		return r.send(now, m, false)
	}
	return n.ep.Send(now, m)
}

// SendNIC injects a NIC-generated control message (no origin CPU cost),
// tracked by the relay when enabled. Layers must prefer this over the
// raw Endpoint.SendNIC so their control traffic survives fault plans.
func (n *NIC) SendNIC(at vtime.Time, m *simnet.Message) (vtime.Time, error) {
	if r := n.relay.Load(); r != nil {
		return r.send(at, m, true)
	}
	return n.ep.SendNIC(at, m)
}

// EnableSharding installs a sharded apply pool on the NIC. Like
// EnableReliability it is first-call-wins: the pool that all layers see is
// the one from the first call. It returns the active pool.
func (n *NIC) EnableSharding(shards, workers int) *ShardPool {
	p := NewShardPool(shards, workers)
	if !n.shardPool.CompareAndSwap(nil, p) {
		p.Close()
	}
	return n.shardPool.Load()
}

// Sharding returns the active shard pool, or nil when the target applies
// serially.
func (n *NIC) Sharding() *ShardPool { return n.shardPool.Load() }

// Stop terminates the agent goroutine and drains the shard pool, if any.
// Messages still queued are left for the network's Close to discard. Stop
// is idempotent.
func (n *NIC) Stop() {
	select {
	case <-n.quit:
	default:
		close(n.quit)
	}
	<-n.done
	if p := n.shardPool.Load(); p != nil {
		p.Close()
	}
}

// agent is the rank's communication thread: it consumes the delivery queue
// and dispatches by kind. Each delivery reserves the endpoint's delivery
// clock for the per-message overhead, so target-side virtual time accrues
// per message exactly once regardless of which layer handles it.
func (n *NIC) agent() {
	defer close(n.done)
	for {
		select {
		case <-n.quit:
			return
		case m, ok := <-n.ep.Queue():
			if !ok {
				return
			}
			n.dispatch(m)
		}
	}
}

// dispatch filters one arriving message through the reliable-delivery
// layer — acks complete inflight frames, tracked frames are checksummed,
// deduplicated and reassembled — before kind dispatch. Reception is
// always on: tracked frames are admitted whether or not this rank
// enabled its own transmit relay.
func (n *NIC) dispatch(m *simnet.Message) {
	if m.Kind == KindRelAck {
		if r := n.relay.Load(); r != nil {
			r.handleAck(m)
		}
		return
	}
	if m.RSeq != 0 {
		n.rxAdmit(m)
		return
	}
	n.dispatchKind(m)
}

// dispatchKind routes one admitted message to its handler, parking it if
// the owning layer has not registered the kind yet (or is still draining
// a backlog).
func (n *NIC) dispatchKind(m *simnet.Message) {
	n.mu.Lock()
	h := n.handlers[m.Kind]
	if h == nil || len(n.pending[m.Kind]) > 0 {
		n.pending[m.Kind] = append(n.pending[m.Kind], m)
		n.mu.Unlock()
		n.Parked.Inc()
		return
	}
	n.mu.Unlock()
	n.deliver(h, m)
}

// deliver charges delivery on the target NIC's ingress lane — per-message
// overhead plus per-byte DMA cost; all senders share this lane, the
// funnel the Figure 2 workload contends on — then runs the handler.
func (n *NIC) deliver(h Handler, m *simnet.Message) {
	at := n.ep.DeliverLane().Complete(m.ArriveAt, n.ep.Cost().Deliver(len(m.Payload)))
	n.Delivered.Inc()
	n.DeliveredBytes.Add(int64(len(m.Payload)))
	h(m, at)
}
