package portals

import (
	"bytes"
	"testing"
	"time"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// rig is a two-rank portals test fixture.
type rig struct {
	net  *simnet.Network
	nics []*NIC
	mems []*memsim.Memory
}

func newRig(t *testing.T, ranks int, hwAcks bool) *rig {
	t.Helper()
	net := simnet.New(simnet.Config{Ranks: ranks, Ordered: true})
	r := &rig{net: net}
	for i := 0; i < ranks; i++ {
		mem := memsim.New(memsim.Config{Size: 1 << 16})
		r.mems = append(r.mems, mem)
		r.nics = append(r.nics, NewNIC(net.Endpoint(i), mem, Config{HardwareAcks: hwAcks}))
	}
	t.Cleanup(func() {
		for _, n := range r.nics {
			n.Stop()
		}
		net.Close()
	})
	return r
}

func waitEvent(t *testing.T, eq *EQ, want EventType) Event {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-eq.Chan():
			if ev.Type == want {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", want)
		}
	}
}

func TestPutDeliversAndAcks(t *testing.T) {
	r := newRig(t, 2, true)
	// Target exposes a region at portal index 5.
	tgtRegion := r.mems[1].MustAlloc(256)
	tgtEQ := NewEQ(0)
	tgtMD := r.nics[1].AttachMD(tgtRegion, tgtEQ, MDPut|MDGet)
	r.nics[1].Expose(5, tgtMD)

	// Origin sets up a source MD.
	srcRegion := r.mems[0].MustAlloc(64)
	r.mems[0].LocalWrite(srcRegion.Offset, bytes.Repeat([]byte{0xCD}, 64))
	srcEQ := NewEQ(0)
	srcMD := r.nics[0].AttachMD(srcRegion, srcEQ, 0)

	sent, err := srcMD.Put(0, 0, 64, 1, 5, 32, true, 777)
	if err != nil {
		t.Fatal(err)
	}
	if sent <= 0 {
		t.Fatalf("local completion time %d", sent)
	}
	se := waitEvent(t, srcEQ, EvSendEnd)
	if se.Length != 64 || se.Peer != 1 || se.UserHdr != 777 {
		t.Fatalf("send event %+v", se)
	}
	pe := waitEvent(t, tgtEQ, EvPutEnd)
	if pe.Offset != 32 || pe.Length != 64 || pe.Peer != 0 {
		t.Fatalf("put event %+v", pe)
	}
	ack := waitEvent(t, srcEQ, EvAck)
	if ack.Length != 64 || ack.UserHdr != 777 {
		t.Fatalf("ack event %+v", ack)
	}
	if ack.At <= se.At {
		t.Fatalf("ack at %d not after send end %d", ack.At, se.At)
	}
	got := r.mems[1].Snapshot(tgtRegion.Offset+32, 64)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xCD}, 64)) {
		t.Fatal("payload not deposited")
	}
}

func TestSoftwareAckCharged(t *testing.T) {
	r := newRig(t, 2, false) // no hardware acks
	tgtRegion := r.mems[1].MustAlloc(64)
	tgtMD := r.nics[1].AttachMD(tgtRegion, nil, MDPut)
	r.nics[1].Expose(1, tgtMD)
	srcRegion := r.mems[0].MustAlloc(8)
	srcEQ := NewEQ(0)
	srcMD := r.nics[0].AttachMD(srcRegion, srcEQ, 0)
	if _, err := srcMD.Put(0, 0, 8, 1, 1, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, srcEQ, EvAck)
	if r.nics[1].SoftAcks.Value() != 1 {
		t.Fatalf("soft acks = %d, want 1", r.nics[1].SoftAcks.Value())
	}
}

func TestGetRoundTrip(t *testing.T) {
	r := newRig(t, 2, true)
	tgtRegion := r.mems[1].MustAlloc(128)
	r.mems[1].LocalWrite(tgtRegion.Offset+16, bytes.Repeat([]byte{0x5A}, 32))
	tgtEQ := NewEQ(0)
	tgtMD := r.nics[1].AttachMD(tgtRegion, tgtEQ, MDGet)
	r.nics[1].Expose(2, tgtMD)

	dstRegion := r.mems[0].MustAlloc(64)
	dstEQ := NewEQ(0)
	dstMD := r.nics[0].AttachMD(dstRegion, dstEQ, 0)
	if err := dstMD.Get(0, 8, 32, 1, 2, 16, 55); err != nil {
		t.Fatal(err)
	}
	ge := waitEvent(t, tgtEQ, EvGetEnd)
	if ge.Offset != 16 || ge.Length != 32 {
		t.Fatalf("get event %+v", ge)
	}
	re := waitEvent(t, dstEQ, EvReplyEnd)
	if re.Offset != 8 || re.Length != 32 || re.UserHdr != 55 {
		t.Fatalf("reply event %+v", re)
	}
	got := r.mems[0].Snapshot(dstRegion.Offset+8, 32)
	if !bytes.Equal(got, bytes.Repeat([]byte{0x5A}, 32)) {
		t.Fatal("get data wrong")
	}
}

func TestBadRequestsCounted(t *testing.T) {
	r := newRig(t, 2, true)
	srcRegion := r.mems[0].MustAlloc(8)
	srcMD := r.nics[0].AttachMD(srcRegion, nil, 0)
	// Unknown portal index.
	if _, err := srcMD.Put(0, 0, 8, 1, 99, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	// Out-of-bounds target offset.
	tgtRegion := r.mems[1].MustAlloc(4)
	tgtMD := r.nics[1].AttachMD(tgtRegion, nil, MDPut)
	r.nics[1].Expose(1, tgtMD)
	if _, err := srcMD.Put(0, 0, 8, 1, 1, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	// Put to a get-only MD.
	getOnly := r.mems[1].MustAlloc(64)
	gMD := r.nics[1].AttachMD(getOnly, nil, MDGet)
	r.nics[1].Expose(2, gMD)
	if _, err := srcMD.Put(0, 0, 8, 1, 2, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for r.nics[1].BadReq.Value() < 3 {
		select {
		case <-deadline:
			t.Fatalf("bad requests = %d, want 3", r.nics[1].BadReq.Value())
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestPutSourceBoundsChecked(t *testing.T) {
	r := newRig(t, 2, true)
	srcRegion := r.mems[0].MustAlloc(8)
	srcMD := r.nics[0].AttachMD(srcRegion, nil, 0)
	if _, err := srcMD.Put(0, 4, 8, 1, 0, 0, false, 0); err == nil {
		t.Fatal("put beyond the source MD should fail locally")
	}
	if err := srcMD.Get(0, 6, 4, 1, 0, 0, 0); err == nil {
		t.Fatal("get beyond the destination MD should fail locally")
	}
}

func TestExposeDuplicatePanics(t *testing.T) {
	r := newRig(t, 1, true)
	md := r.nics[0].AttachMD(r.mems[0].MustAlloc(8), nil, MDPut)
	r.nics[0].Expose(1, md)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Expose should panic")
		}
	}()
	r.nics[0].Expose(1, md)
}

func TestUnexpose(t *testing.T) {
	r := newRig(t, 2, true)
	tgtRegion := r.mems[1].MustAlloc(16)
	md := r.nics[1].AttachMD(tgtRegion, nil, MDPut)
	r.nics[1].Expose(3, md)
	r.nics[1].Unexpose(3)
	srcMD := r.nics[0].AttachMD(r.mems[0].MustAlloc(8), nil, 0)
	if _, err := srcMD.Put(0, 0, 8, 1, 3, 0, false, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for r.nics[1].BadReq.Value() < 1 {
		select {
		case <-deadline:
			t.Fatal("put through unexposed portal was not rejected")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestEQOverflowFlag(t *testing.T) {
	q := NewEQ(2)
	q.post(Event{Type: EvAck})
	q.post(Event{Type: EvAck})
	if q.Overflowed() {
		t.Fatal("premature overflow")
	}
	q.post(Event{Type: EvAck})
	if !q.Overflowed() {
		t.Fatal("overflow not recorded")
	}
	if ev, ok := q.Poll(); !ok || ev.Type != EvAck {
		t.Fatal("poll failed")
	}
}

func TestEventTypeStrings(t *testing.T) {
	for ev, want := range map[EventType]string{
		EvSendEnd: "SEND_END", EvAck: "ACK", EvPutEnd: "PUT_END",
		EvGetEnd: "GET_END", EvReplyEnd: "REPLY_END",
	} {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), want)
		}
	}
}

func TestRegisterHandlerDuplicatePanics(t *testing.T) {
	r := newRig(t, 1, true)
	r.nics[0].RegisterHandler(200, func(*simnet.Message, vtime.Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handler registration should panic")
		}
	}()
	r.nics[0].RegisterHandler(200, func(*simnet.Message, vtime.Time) {})
}
