package portals

import (
	"sync"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/vtime"
)

// TestShardPoolFIFOPerShard: tasks submitted to one shard run strictly in
// submission order even with many workers draining the pool.
func TestShardPoolFIFOPerShard(t *testing.T) {
	p := NewShardPool(4, 4)
	const perShard = 200
	var mu sync.Mutex
	order := make([][]int, 4)
	for i := 0; i < perShard; i++ {
		for s := 0; s < 4; s++ {
			s, i := s, i
			p.Submit(s, ShardTask{Cost: 10, Run: func(vtime.Time) {
				mu.Lock()
				order[s] = append(order[s], i)
				mu.Unlock()
			}})
		}
	}
	p.Close()
	for s, got := range order {
		if len(got) != perShard {
			t.Fatalf("shard %d ran %d tasks, want %d", s, len(got), perShard)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("shard %d position %d ran task %d: FIFO violated", s, i, v)
			}
		}
	}
}

// TestShardPoolModelScaling: the modelled completion time of a balanced
// workload shrinks with the worker bound — and is exact, because lanes are
// charged at submit time, independent of host scheduling.
func TestShardPoolModelScaling(t *testing.T) {
	const shards, tasks = 7, 700
	const cost = vtime.Duration(1000)
	for _, w := range []int{1, 2, 4, 7} {
		p := NewShardPool(shards, w)
		var maxEnd atomic.Int64
		for i := 0; i < tasks; i++ {
			p.Submit(i%shards, ShardTask{Cost: cost, Run: func(end vtime.Time) {
				for {
					cur := maxEnd.Load()
					if int64(end) <= cur || maxEnd.CompareAndSwap(cur, int64(end)) {
						return
					}
				}
			}})
		}
		p.Close()
		// Busiest lane carries ceil(shards/w) home shards of tasks/shards
		// tasks each.
		homeShards := (shards + w - 1) / w
		want := int64(homeShards) * (tasks / shards) * int64(cost)
		if maxEnd.Load() != want {
			t.Errorf("workers=%d: modelled makespan %d, want exactly %d", w, maxEnd.Load(), want)
		}
	}
}

// TestShardPoolTicket: a ticketed task observes every task routed before
// it, across all shards, even at workers=1 (helping drain).
func TestShardPoolTicket(t *testing.T) {
	for _, w := range []int{1, 3} {
		p := NewShardPool(3, w)
		var applied atomic.Int64
		for i := 0; i < 30; i++ {
			p.Submit(i%3, ShardTask{Cost: 5, Run: func(vtime.Time) { applied.Add(1) }})
		}
		ticket := p.Snapshot()
		var sawAll atomic.Bool
		p.Submit(0, ShardTask{Cost: 5, After: ticket, Run: func(vtime.Time) {
			sawAll.Store(applied.Load() == 30)
		}})
		p.Close()
		if !sawAll.Load() {
			t.Errorf("workers=%d: ticketed task ran before its %d predecessors", w, 30)
		}
	}
}

// TestShardPoolPanic: a panicking task is recovered, reported through the
// handler, and the pool keeps applying subsequent tasks.
func TestShardPoolPanic(t *testing.T) {
	p := NewShardPool(2, 2)
	var gotShard atomic.Int64
	var gotVal atomic.Value
	gotShard.Store(-1)
	p.SetPanicHandler(func(shard int, recovered any) {
		gotShard.Store(int64(shard))
		gotVal.Store(recovered)
	})
	var after atomic.Bool
	p.Submit(1, ShardTask{Cost: 5, Run: func(vtime.Time) { panic("boom") }})
	p.Submit(1, ShardTask{Cost: 5, Run: func(vtime.Time) { after.Store(true) }})
	p.Close()
	if gotShard.Load() != 1 {
		t.Fatalf("panic handler saw shard %d, want 1", gotShard.Load())
	}
	if v, _ := gotVal.Load().(string); v != "boom" {
		t.Fatalf("panic handler saw %v, want boom", gotVal.Load())
	}
	if !after.Load() {
		t.Fatal("task queued after the panic never ran")
	}
	if p.Panics.Value() != 1 {
		t.Fatalf("Panics=%d, want 1", p.Panics.Value())
	}
}

// TestShardPoolStats: per-shard task counts reconcile with the submitted
// totals on a fully skewed workload (everything on one shard).
func TestShardPoolStats(t *testing.T) {
	p := NewShardPool(4, 4)
	const n = 400
	block := make(chan struct{})
	p.Submit(0, ShardTask{Cost: 1, Run: func(vtime.Time) { <-block }})
	for i := 1; i < n; i++ {
		p.Submit(0, ShardTask{Cost: 1, Run: func(vtime.Time) {}})
	}
	close(block)
	p.Close()
	if got := p.Stats(0).Tasks.Value(); got != n {
		t.Fatalf("shard 0 completed %d tasks, want %d", got, n)
	}
	var total int64
	for s := 0; s < p.Shards(); s++ {
		total += p.Stats(s).Tasks.Value()
	}
	if total != n {
		t.Fatalf("pool completed %d tasks, want %d", total, n)
	}
}

// TestShardPoolSubmitAfterClose: late submissions run inline instead of
// being dropped.
func TestShardPoolSubmitAfterClose(t *testing.T) {
	p := NewShardPool(2, 1)
	p.Close()
	ran := false
	p.Submit(1, ShardTask{Cost: 5, Run: func(vtime.Time) { ran = true }})
	if !ran {
		t.Fatal("post-Close submit did not run inline")
	}
	if got := p.Stats(1).Tasks.Value(); got != 1 {
		t.Fatalf("post-Close task not counted: Tasks=%d", got)
	}
}
