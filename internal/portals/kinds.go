package portals

// Message-kind space for the whole stack. Every layer that registers a
// handler on the NIC dispatch table draws its kinds from the range assigned
// here, so collisions are impossible by construction (RegisterHandler also
// panics on a duplicate registration, catching mistakes in tests).
const (
	// Portals protocol kinds (this package).
	KindPtlPut   uint8 = 1 // put request: payload carried, applied to target MD
	KindPtlAck   uint8 = 2 // hardware acknowledgement of a put (remote completion)
	KindPtlGet   uint8 = 3 // get request: no payload
	KindPtlReply uint8 = 4 // get reply: payload carried back to origin MD
	KindRelAck   uint8 = 5 // reliable-delivery acknowledgement (relay.go)

	// KindRuntimeBase is the first kind owned by internal/runtime
	// (point-to-point send/recv, barrier, collectives).
	KindRuntimeBase uint8 = 10
	// KindCoreBase is the first kind owned by internal/core (the strawman
	// RMA protocol).
	KindCoreBase uint8 = 20
	// KindMPI2Base is the first kind owned by internal/mpi2rma.
	KindMPI2Base uint8 = 40
	// KindARMCIBase is the first kind owned by internal/armci.
	KindARMCIBase uint8 = 60
	// KindGASNetBase is the first kind owned by internal/gasnet.
	KindGASNetBase uint8 = 70
)
