package ga

import (
	"math/rand"
	"testing"

	"mpi3rma/internal/runtime"
)

func newWorld(t *testing.T, ranks int) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

func TestCreateValidation(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		if _, err := tk.Create(p.Comm(), 2, 8); err == nil {
			t.Error("array smaller than the rank count accepted")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMyRowsPartition(t *testing.T) {
	w := newWorld(t, 3)
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		// 10 rows over 3 ranks: rowsPer=4 -> ranks own 4,4,2.
		a, err := tk.Create(p.Comm(), 10, 4)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		lo, hi := a.MyRows()
		owned := hi - lo
		total := p.Comm().AllreduceInt64(runtime.OpSum, int64(owned))
		if total != 10 {
			t.Errorf("partition covers %d rows, want 10", total)
		}
		switch p.Rank() {
		case 0, 1:
			if owned != 4 {
				t.Errorf("rank %d owns %d rows, want 4", p.Rank(), owned)
			}
		case 2:
			if owned != 2 {
				t.Errorf("rank 2 owns %d rows, want 2", owned)
			}
		}
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPutGetPatchAcrossOwners: a patch spanning all owners round-trips.
func TestPutGetPatchAcrossOwners(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		a, err := tk.Create(p.Comm(), 16, 8)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		a.Sync()
		if p.Rank() == 2 {
			// Write a 10x3 patch crossing three owners.
			patch := make([]float64, 10*3)
			for i := range patch {
				patch[i] = float64(i) + 0.5
			}
			if err := a.Put(3, 2, 10, 3, patch); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		a.Sync()
		if p.Rank() == 1 {
			got := make([]float64, 10*3)
			if err := a.Get(3, 2, 10, 3, got); err != nil {
				t.Errorf("get: %v", err)
			}
			for i, v := range got {
				if v != float64(i)+0.5 {
					t.Errorf("patch[%d] = %v, want %v", i, v, float64(i)+0.5)
					break
				}
			}
			// Neighbouring column untouched (zero).
			side := make([]float64, 10)
			if err := a.Get(3, 5, 10, 1, side); err != nil {
				t.Errorf("side get: %v", err)
			}
			for i, v := range side {
				if v != 0 {
					t.Errorf("column 5 row %d contaminated: %v", i, v)
					break
				}
			}
		}
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFillAndGet(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		a, err := tk.Create(p.Comm(), 8, 4)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		a.Fill(7.25)
		a.Sync()
		if p.Rank() == 1 {
			got := make([]float64, 8*4)
			if err := a.Get(0, 0, 8, 4, got); err != nil {
				t.Errorf("get: %v", err)
			}
			for i, v := range got {
				if v != 7.25 {
					t.Errorf("element %d = %v", i, v)
					break
				}
			}
		}
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAccConcurrent: concurrent accumulates from every rank onto the same
// patch sum exactly (ARMCI accumulate serialization).
func TestAccConcurrent(t *testing.T) {
	w := newWorld(t, 3)
	const iters = 8
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		a, err := tk.Create(p.Comm(), 6, 6)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		a.Sync()
		ones := make([]float64, 6*6)
		for i := range ones {
			ones[i] = 1
		}
		for i := 0; i < iters; i++ {
			if err := a.Acc(0, 0, 6, 6, 2.0, ones); err != nil {
				t.Errorf("acc: %v", err)
			}
		}
		a.Sync()
		if p.Rank() == 0 {
			got := make([]float64, 6*6)
			if err := a.Get(0, 0, 6, 6, got); err != nil {
				t.Errorf("get: %v", err)
			}
			want := float64(3 * iters * 2)
			for i, v := range got {
				if v != want {
					t.Errorf("element %d = %v, want %v", i, v, want)
					break
				}
			}
		}
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPatchValidation(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		a, err := tk.Create(p.Comm(), 4, 4)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := make([]float64, 4)
		if err := a.Put(3, 3, 2, 2, buf); err == nil {
			t.Error("out-of-bounds patch accepted")
		}
		if err := a.Put(0, 0, 2, 2, buf[:3]); err == nil {
			t.Error("short buffer accepted")
		}
		if err := a.Get(-1, 0, 1, 1, buf[:1]); err == nil {
			t.Error("negative row accepted")
		}
		p.Barrier()
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRandomPatchesAgainstShadow: random put/get patches from a single
// writer rank match a local shadow matrix.
func TestRandomPatchesAgainstShadow(t *testing.T) {
	w := newWorld(t, 3)
	const rows, cols = 12, 9
	err := w.Run(func(p *runtime.Proc) {
		tk := Attach(p)
		a, err := tk.Create(p.Comm(), rows, cols)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		a.Sync()
		if p.Rank() == 0 {
			shadow := make([]float64, rows*cols)
			rng := rand.New(rand.NewSource(21))
			for iter := 0; iter < 40; iter++ {
				r0 := rng.Intn(rows)
				c0 := rng.Intn(cols)
				nr := 1 + rng.Intn(rows-r0)
				nc := 1 + rng.Intn(cols-c0)
				patch := make([]float64, nr*nc)
				for i := range patch {
					patch[i] = rng.Float64()
				}
				if err := a.Put(r0, c0, nr, nc, patch); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				for i := 0; i < nr; i++ {
					copy(shadow[(r0+i)*cols+c0:(r0+i)*cols+c0+nc], patch[i*nc:(i+1)*nc])
				}
				// Read back a random patch and compare.
				gr := rng.Intn(rows)
				gc := rng.Intn(cols)
				gnr := 1 + rng.Intn(rows-gr)
				gnc := 1 + rng.Intn(cols-gc)
				got := make([]float64, gnr*gnc)
				if err := a.Get(gr, gc, gnr, gnc, got); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				for i := 0; i < gnr; i++ {
					for j := 0; j < gnc; j++ {
						if got[i*gnc+j] != shadow[(gr+i)*cols+gc+j] {
							t.Errorf("iter %d: (%d,%d) = %v, want %v", iter, gr+i, gc+j, got[i*gnc+j], shadow[(gr+i)*cols+gc+j])
							return
						}
					}
				}
			}
		}
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}
