// Package ga implements a Global-Arrays-like toolkit (paper Section II
// and reference [17]: "Global Arrays: A non-uniform-memory-access
// programming model for high-performance computers") on top of the
// ARMCI-like layer — the same layering as the real Global Arrays toolkit,
// whose communication substrate is ARMCI (paper Section VI).
//
// A ga.Array is a dense 2-D float64 array block-distributed by rows over
// a communicator. Any rank may read (Get), write (Put) or accumulate
// (Acc) an arbitrary rectangular patch of the global index space without
// the owners' participation; patches that span owners decompose into one
// strided ARMCI operation per owner. Sync is the GA_Sync
// fence-plus-barrier.
package ga

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpi3rma/internal/armci"
	"mpi3rma/internal/core"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// Toolkit is one rank's GA library state.
type Toolkit struct {
	proc *runtime.Proc
	ac   *armci.ARMCI
}

// extKey is the Proc extension slot.
const extKey = "ga"

// Attach returns the rank's GA toolkit, creating it on first use.
func Attach(p *runtime.Proc) *Toolkit {
	return p.Ext(extKey, func() any {
		return &Toolkit{proc: p, ac: armci.Attach(p)}
	}).(*Toolkit)
}

// Array is a 2-D float64 global array distributed by row blocks.
type Array struct {
	tk   *Toolkit
	comm *runtime.Comm
	// Rows and Cols are the global dimensions.
	Rows, Cols int
	// rowsPer is the row-block size: owner of global row i is i/rowsPer
	// (the last owner may hold fewer rows).
	rowsPer int
	tms     []core.TargetMem
	local   memsim.Region
	scratch memsim.Region
}

// Create collectively builds a rows x cols global array over comm. rows
// must be at least the number of ranks.
func (tk *Toolkit) Create(comm *runtime.Comm, rows, cols int) (*Array, error) {
	n := comm.Size()
	if rows < n || cols <= 0 {
		return nil, fmt.Errorf("ga: cannot distribute a %dx%d array over %d ranks", rows, cols, n)
	}
	rowsPer := (rows + n - 1) / n
	blockBytes := rowsPer * cols * 8 // uniform exposure simplifies addressing
	tms, local, err := tk.ac.Malloc(comm, blockBytes)
	if err != nil {
		return nil, err
	}
	return &Array{
		tk:      tk,
		comm:    comm,
		Rows:    rows,
		Cols:    cols,
		rowsPer: rowsPer,
		tms:     tms,
		local:   local,
		scratch: tk.proc.Alloc(rows * cols * 8), // large enough for any patch
	}, nil
}

// ownerOf returns the owner rank and owner-local row of a global row.
func (a *Array) ownerOf(row int) (rank, localRow int) {
	return row / a.rowsPer, row % a.rowsPer
}

// MyRows returns the half-open global row range this rank owns.
func (a *Array) MyRows() (lo, hi int) {
	lo = a.comm.Rank() * a.rowsPer
	hi = lo + a.rowsPer
	if hi > a.Rows {
		hi = a.Rows
	}
	if lo > a.Rows {
		lo = a.Rows
	}
	return lo, hi
}

// checkPatch validates a rectangular patch against the global shape.
func (a *Array) checkPatch(row, col, nrows, ncols int, buf []float64) error {
	if row < 0 || col < 0 || nrows <= 0 || ncols <= 0 || row+nrows > a.Rows || col+ncols > a.Cols {
		return fmt.Errorf("ga: patch [%d:%d,%d:%d) outside %dx%d array", row, row+nrows, col, col+ncols, a.Rows, a.Cols)
	}
	if len(buf) != nrows*ncols {
		return fmt.Errorf("ga: patch buffer holds %d elements, patch needs %d", len(buf), nrows*ncols)
	}
	return nil
}

// forEachOwner decomposes the patch row range into per-owner spans and
// invokes fn(owner, firstGlobalRow, firstLocalRow, numRows, bufRowOffset).
func (a *Array) forEachOwner(row, nrows int, fn func(owner, gRow, lRow, count, bufRow int) error) error {
	done := 0
	for done < nrows {
		g := row + done
		owner, lRow := a.ownerOf(g)
		span := a.rowsPer - lRow
		if span > nrows-done {
			span = nrows - done
		}
		if err := fn(owner, g, lRow, span, done); err != nil {
			return err
		}
		done += span
	}
	return nil
}

// stage copies float64s into the rank's scratch region, returning the
// staged byte count.
func (a *Array) stage(buf []float64) int {
	raw := make([]byte, len(buf)*8)
	for i, v := range buf {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	a.tk.proc.WriteLocal(a.scratch, 0, raw)
	return len(raw)
}

// unstage reads float64s back out of the scratch region.
func (a *Array) unstage(buf []float64) {
	raw := a.tk.proc.ReadLocal(a.scratch, 0, len(buf)*8)
	for i := range buf {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
}

// Put writes the nrows x ncols patch at (row, col) from buf (row-major) —
// GA_Put. One strided ARMCI put per owner.
func (a *Array) Put(row, col, nrows, ncols int, buf []float64) error {
	if err := a.checkPatch(row, col, nrows, ncols, buf); err != nil {
		return err
	}
	a.stage(buf)
	return a.forEachOwner(row, nrows, func(owner, gRow, lRow, count, bufRow int) error {
		return a.tk.ac.PutS(a.scratch,
			armci.StridedSpec{Off: bufRow * ncols * 8, Strides: []int{ncols * 8}},
			a.tms[owner],
			armci.StridedSpec{Off: (lRow*a.Cols + col) * 8, Strides: []int{a.Cols * 8}},
			ncols*8, []int{count}, owner, a.comm)
	})
}

// Get reads the nrows x ncols patch at (row, col) into buf (row-major) —
// GA_Get.
func (a *Array) Get(row, col, nrows, ncols int, buf []float64) error {
	if err := a.checkPatch(row, col, nrows, ncols, buf); err != nil {
		return err
	}
	err := a.forEachOwner(row, nrows, func(owner, gRow, lRow, count, bufRow int) error {
		return a.tk.ac.GetS(a.scratch,
			armci.StridedSpec{Off: bufRow * ncols * 8, Strides: []int{ncols * 8}},
			a.tms[owner],
			armci.StridedSpec{Off: (lRow*a.Cols + col) * 8, Strides: []int{a.Cols * 8}},
			ncols*8, []int{count}, owner, a.comm)
	})
	if err != nil {
		return err
	}
	a.unstage(buf)
	return nil
}

// Acc accumulates scale*buf into the patch at (row, col) — GA_Acc, the
// daxpy accumulate, serialized at each owner.
func (a *Array) Acc(row, col, nrows, ncols int, scale float64, buf []float64) error {
	if err := a.checkPatch(row, col, nrows, ncols, buf); err != nil {
		return err
	}
	a.stage(buf)
	return a.forEachOwner(row, nrows, func(owner, gRow, lRow, count, bufRow int) error {
		return a.tk.ac.AccS(scale, a.scratch,
			armci.StridedSpec{Off: bufRow * ncols * 8, Strides: []int{ncols * 8}},
			a.tms[owner],
			armci.StridedSpec{Off: (lRow*a.Cols + col) * 8, Strides: []int{a.Cols * 8}},
			ncols*8, []int{count}, owner, a.comm)
	})
}

// Fill sets every element this rank owns to v (collective; callers should
// Sync afterwards) — GA_Fill.
func (a *Array) Fill(v float64) {
	lo, hi := a.MyRows()
	if hi <= lo {
		return
	}
	raw := make([]byte, (hi-lo)*a.Cols*8)
	bits := math.Float64bits(v)
	for i := 0; i < len(raw); i += 8 {
		binary.LittleEndian.PutUint64(raw[i:], bits)
	}
	a.tk.proc.WriteLocal(a.local, 0, raw)
}

// Sync is GA_Sync: all outstanding operations complete everywhere, then a
// barrier.
func (a *Array) Sync() error {
	return a.tk.ac.Barrier(a.comm)
}

// Local returns this rank's block region (rowsPer x Cols, row-major; only
// MyRows rows are meaningful).
func (a *Array) Local() memsim.Region { return a.local }
