package pgas

import (
	"bytes"
	"testing"

	"mpi3rma/internal/runtime"
)

func newWorld(t *testing.T, ranks int) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

func TestSpaceCreateAndBounds(t *testing.T) {
	w := newWorld(t, 3)
	err := w.Run(func(p *runtime.Proc) {
		sp, err := NewSpace(p, p.Comm(), 128)
		if err != nil {
			t.Errorf("space: %v", err)
			return
		}
		if sp.SegmentSize() != 128 || sp.Local.Size != 128 {
			t.Errorf("segment size %d local %d", sp.SegmentSize(), sp.Local.Size)
		}
		if err := sp.Write(GlobalPtr{Rank: 5, Offset: 0}, []byte{1}, Relaxed); err == nil {
			t.Error("write through a foreign-affinity pointer accepted")
		}
		if err := sp.Write(GlobalPtr{Rank: 0, Offset: 127}, []byte{1, 2}, Relaxed); err == nil {
			t.Error("out-of-segment write accepted")
		}
		if _, err := sp.Read(GlobalPtr{Rank: 0, Offset: -1}, 1, Relaxed); err == nil {
			t.Error("negative-offset read accepted")
		}
		sp.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelaxedWriteFenceRead(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		sp, err := NewSpace(p, p.Comm(), 64)
		if err != nil {
			t.Errorf("space: %v", err)
			return
		}
		if p.Rank() == 0 {
			g := GlobalPtr{Rank: 1, Offset: 8}
			if err := sp.Write(g, bytes.Repeat([]byte{0xC7}, 16), Relaxed); err != nil {
				t.Errorf("write: %v", err)
			}
			if err := sp.Fence(); err != nil {
				t.Errorf("fence: %v", err)
			}
			got, err := sp.Read(g, 16, Relaxed)
			if err != nil {
				t.Errorf("read: %v", err)
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{0xC7}, 16)) {
				t.Error("read after fence diverged")
			}
		}
		sp.Barrier()
		if p.Rank() == 1 {
			got := p.Mem().Snapshot(sp.Local.Offset+8, 16)
			if !bytes.Equal(got, bytes.Repeat([]byte{0xC7}, 16)) {
				t.Error("relaxed write not visible after the writer's fence+barrier")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrictProgramOrder: strict accesses land in program order even on a
// scrambling network — the UPC strict guarantee.
func TestStrictProgramOrder(t *testing.T) {
	w := runtime.NewWorld(runtime.Config{Ranks: 2, UnorderedNet: true, Seed: 31})
	t.Cleanup(w.Close)
	err := w.Run(func(p *runtime.Proc) {
		sp, err := NewSpace(p, p.Comm(), 16)
		if err != nil {
			t.Errorf("space: %v", err)
			return
		}
		g := GlobalPtr{Rank: 1, Offset: 0}
		if p.Rank() == 0 {
			for i := 1; i <= 50; i++ {
				if err := sp.Write(g, []byte{byte(i)}, Strict); err != nil {
					t.Errorf("strict write: %v", err)
				}
			}
		}
		sp.Barrier()
		if p.Rank() == 1 {
			if got := p.Mem().Snapshot(sp.Local.Offset, 1)[0]; got != 50 {
				t.Errorf("final value %d, want the last strict write's 50", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrictFlagProtocol: the flag-after-data pattern UPC programs write
// with strict accesses works without any explicit fence.
func TestStrictFlagProtocol(t *testing.T) {
	w := runtime.NewWorld(runtime.Config{Ranks: 2, UnorderedNet: true, Seed: 32})
	t.Cleanup(w.Close)
	err := w.Run(func(p *runtime.Proc) {
		sp, err := NewSpace(p, p.Comm(), 16)
		if err != nil {
			t.Errorf("space: %v", err)
			return
		}
		data := GlobalPtr{Rank: 1, Offset: 0}
		flag := GlobalPtr{Rank: 1, Offset: 8}
		if p.Rank() == 0 {
			// The publication pattern needs BOTH accesses strict (relaxed
			// writes are outside the ordered stream and may pass a later
			// strict write — exactly UPC's rule).
			if err := sp.Write(data, []byte{0xCD}, Strict); err != nil {
				t.Errorf("strict data write: %v", err)
			}
			if err := sp.Write(flag, []byte{1}, Strict); err != nil {
				t.Errorf("flag write: %v", err)
			}
			p.Barrier()
			return
		}
		// Spin on the flag through the global space (loopback reads).
		for {
			f, err := sp.Read(flag, 1, Relaxed)
			if err != nil {
				t.Errorf("flag read: %v", err)
				return
			}
			if f[0] == 1 {
				break
			}
		}
		d, err := sp.Read(data, 1, Relaxed)
		if err != nil {
			t.Errorf("data read: %v", err)
			return
		}
		if d[0] != 0xCD {
			t.Errorf("flag visible but data %#x, want 0xCD", d[0])
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalPtrHelpers(t *testing.T) {
	g := GlobalPtr{Rank: 2, Offset: 10}
	if g.Add(6) != (GlobalPtr{Rank: 2, Offset: 16}) {
		t.Error("Add is wrong")
	}
	if g.String() != "<2>+10" {
		t.Errorf("String = %q", g.String())
	}
	if Relaxed.String() != "relaxed" || Strict.String() != "strict" {
		t.Error("mode strings")
	}
}

func TestScratchGrowth(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		sp, err := NewSpace(p, p.Comm(), 4096)
		if err != nil {
			t.Errorf("space: %v", err)
			return
		}
		if p.Rank() == 0 {
			// Many writes of growing size must not exhaust rank memory
			// (the scratch buffer is reused, not re-allocated per call).
			for i := 0; i < 200; i++ {
				n := 1 + i%1024
				if err := sp.Write(GlobalPtr{Rank: 1, Offset: 0}, make([]byte, n), Relaxed); err != nil {
					t.Errorf("write %d: %v", i, err)
					return
				}
			}
		}
		sp.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
