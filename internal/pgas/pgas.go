// Package pgas is a minimal PGAS-language runtime shim over the strawman
// engine — the "compilation target" use the paper opens Section II with:
// "Partitioned Global Address Space (PGAS) languages such as UPC and
// Co-Array Fortran rely on efficient RMA operations. It is natural to
// look at the MPI-2 RMA interface as an implementation layer for these
// programming models" — and whose mismatches with MPI-2 motivated the
// strawman.
//
// What a UPC-like compiler needs, and how the strawman provides it here:
//
//   - Shared objects anywhere in memory, not collectively created
//     windows: Space exposes each rank's shared segment once; global
//     pointers are (rank, offset) pairs — the paper's requirement 1.
//   - Strict vs relaxed accesses (the hybrid consistency of Section
//     III-A): a relaxed access compiles to a bare transfer; a strict
//     access compiles to ordered + remote-complete, giving the
//     program-order, globally-visible semantics UPC's `strict` demands.
//   - Overlapping concurrent accesses are permitted with undefined
//     result, not erroneous — the paper's requirement 3.
//
// The package is deliberately small: it demonstrates the mapping, which
// is the paper's argument, not a full language runtime.
package pgas

import (
	"fmt"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// Mode selects the consistency of one access (UPC's strict/relaxed).
type Mode int

const (
	// Relaxed accesses may be reordered and complete locally — the
	// cheapest transfer (AttrNone).
	Relaxed Mode = iota
	// Strict accesses happen in program order and are globally visible
	// before the next strict access — ordered + remote-complete +
	// blocking.
	Strict
)

// attrs compiles a consistency mode to strawman attributes — the
// one-line table that is this package's point.
func (m Mode) attrs() core.Attr {
	switch m {
	case Strict:
		return core.AttrOrdering | core.AttrRemoteComplete | core.AttrBlocking
	default:
		return core.AttrBlocking // relaxed: single call, local completion
	}
}

// String returns the UPC keyword for the mode.
func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "relaxed"
}

// GlobalPtr is a PGAS global pointer: an affinity rank plus a byte offset
// into that rank's shared segment.
type GlobalPtr struct {
	Rank   int
	Offset int
}

// Add returns the pointer displaced by n bytes.
func (g GlobalPtr) Add(n int) GlobalPtr { return GlobalPtr{Rank: g.Rank, Offset: g.Offset + n} }

// String renders the pointer UPC-style.
func (g GlobalPtr) String() string { return fmt.Sprintf("<%d>+%d", g.Rank, g.Offset) }

// Space is one rank's view of the partitioned global address space: every
// rank contributes a shared segment of equal size.
type Space struct {
	proc *runtime.Proc
	eng  *core.Engine
	comm *runtime.Comm
	tms  []core.TargetMem
	// Local is this rank's own shared segment.
	Local memsim.Region
	size  int

	// scratch is a reusable staging buffer (grown on demand); Space
	// methods are intended for the owning rank's goroutine, like the
	// compiler-emitted accesses they stand in for.
	scratch memsim.Region
}

// NewSpace collectively builds the shared space with size bytes of
// affinity per rank.
func NewSpace(p *runtime.Proc, comm *runtime.Comm, size int) (*Space, error) {
	eng := core.Attach(p, core.Options{})
	tms, region, err := eng.ExposeCollective(comm, size)
	if err != nil {
		return nil, err
	}
	return &Space{proc: p, eng: eng, comm: comm, tms: tms, Local: region, size: size}, nil
}

// ensureScratch grows the staging buffer to at least n bytes.
func (s *Space) ensureScratch(n int) memsim.Region {
	if s.scratch.Size < n {
		want := s.scratch.Size * 2
		if want < n {
			want = n
		}
		if want < 256 {
			want = 256
		}
		s.scratch = s.proc.Alloc(want)
	}
	return s.scratch
}

// SegmentSize returns the per-rank shared segment size.
func (s *Space) SegmentSize() int { return s.size }

// ThreadOf returns the affinity rank of a pointer (upc_threadof).
func (s *Space) ThreadOf(g GlobalPtr) int { return g.Rank }

func (s *Space) check(g GlobalPtr, n int) error {
	if g.Rank < 0 || g.Rank >= len(s.tms) {
		return fmt.Errorf("pgas: pointer %v has no affinity in a %d-rank space", g, len(s.tms))
	}
	if g.Offset < 0 || g.Offset+n > s.size {
		return fmt.Errorf("pgas: access [%d,%d) outside the %d-byte segment", g.Offset, g.Offset+n, s.size)
	}
	return nil
}

// Write stores data at the global pointer with the given consistency —
// the assignment `*g = data` a UPC compiler would emit.
func (s *Space) Write(g GlobalPtr, data []byte, mode Mode) error {
	if err := s.check(g, len(data)); err != nil {
		return err
	}
	scratch := s.ensureScratch(len(data))
	s.proc.WriteLocal(scratch, 0, data)
	return s.WriteFrom(g, scratch, 0, len(data), mode)
}

// WriteFrom stores n bytes already resident in src (at srcOff) at the
// global pointer — the buffer-reusing form.
func (s *Space) WriteFrom(g GlobalPtr, src memsim.Region, srcOff, n int, mode Mode) error {
	if err := s.check(g, n); err != nil {
		return err
	}
	sub := memsim.Region{Offset: src.Offset + srcOff, Size: n}
	// Both consistency modes compile to attrs carrying AttrBlocking (see
	// Mode.attrs), so the call completes before returning.
	//rmalint:ignore lostrequest every Mode folds in AttrBlocking
	_, err := s.eng.Put(sub, n, datatype.Byte, s.tms[g.Rank], g.Offset, n, datatype.Byte, g.Rank, s.comm, mode.attrs())
	return err
}

// Read fetches n bytes from the global pointer — the dereference a UPC
// compiler would emit. Reads are data-blocking under either mode; strict
// additionally joins the ordered stream.
func (s *Space) Read(g GlobalPtr, n int, mode Mode) ([]byte, error) {
	if err := s.check(g, n); err != nil {
		return nil, err
	}
	scratch := s.ensureScratch(n)
	req, err := s.eng.Get(scratch, n, datatype.Byte, s.tms[g.Rank], g.Offset, n, datatype.Byte, g.Rank, s.comm, mode.attrs())
	if err != nil {
		return nil, err
	}
	if req != nil {
		req.Wait()
	}
	return s.proc.ReadLocal(scratch, 0, n), nil
}

// Fence is upc_fence: all outstanding relaxed accesses of this thread are
// complete everywhere.
func (s *Space) Fence() error {
	return s.eng.Complete(s.comm, core.AllRanks)
}

// Barrier is upc_barrier: fence plus a barrier.
func (s *Space) Barrier() error {
	if err := s.Fence(); err != nil {
		return err
	}
	s.comm.Barrier()
	return nil
}
