// Package rma is the public face of the strawman MPI-3 RMA interface
// (paper Section IV), layered over internal/core. It is what examples and
// application code import; the internal packages stay free to refactor.
//
// The shape of the API:
//
//	world := runtime.NewWorld(runtime.Config{Ranks: 4})
//	world.Run(func(p *runtime.Proc) {
//		s := rma.Open(p, rma.WithBatch(16))
//		tm, region := s.Expose(1024)            // no collective window
//		... ship tm.Encode() to the origins ...
//		s.Put(src, n, rma.Byte, tm, disp)        // nonblocking put
//		s.Put(src, n, rma.Byte, tm, disp,
//			rma.WithOrdering(), rma.WithNotify()) // per-op attributes
//		s.Complete(tm.Owner)                     // RMA_complete
//	})
//
// Per-operation attributes — the paper's central design point — are
// functional options (WithOrdering, WithAtomic, WithRemoteComplete,
// WithBlocking, WithNotify). Session-level behaviour (operation batching,
// the atomicity mechanism, engine-wide default attributes) is configured by
// options passed to Open.
//
// Transfers default to a symmetric layout: the count and datatype given
// for the origin buffer also describe the target side. Use
// WithTargetLayout to transfer into a different (e.g. strided) target
// layout.
package rma

import (
	"fmt"
	"io"

	"mpi3rma/internal/checker"
	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
)

// Re-exported core types. TargetMem is the paper's target_mem object;
// Request tracks one nonblocking operation; Region names local memory.
type (
	TargetMem = core.TargetMem
	Request   = core.Request
	Region    = memsim.Region
	Type      = datatype.Type
	AccOp     = core.AccOp
)

// Semantic-checker types (see WithChecker): Checker collects Conflicts —
// pairs of overlapping accesses no synchronization separates.
type (
	Checker  = checker.Checker
	Conflict = checker.Conflict
)

// Fault-injection and reliable-delivery types (see WithFaults /
// WithRetryPolicy): a FaultPlan describes, per directed link and window
// of virtual time, how the simulated wire misbehaves; a RetryPolicy tunes
// the relay that survives it.
type (
	FaultPlan   = simnet.FaultPlan
	LinkFaults  = simnet.LinkFaults
	LinkKey     = simnet.LinkKey
	Partition   = simnet.Partition
	Burst       = simnet.Burst
	RankKill    = simnet.RankKill
	RetryPolicy = portals.RetryPolicy
)

// Predefined datatypes.
var (
	Byte    = datatype.Byte
	Int32   = datatype.Int32
	Int64   = datatype.Int64
	Float32 = datatype.Float32
	Float64 = datatype.Float64
)

// Derived-datatype constructors (MPI-style layouts for strided and
// irregular transfers).
var (
	Contiguous = datatype.Contiguous
	Vector     = datatype.Vector
	Indexed    = datatype.Indexed
	Struct     = datatype.Struct
)

// Field describes one member of a Struct datatype.
type Field = datatype.Field

// Accumulate combining operations.
const (
	Replace = core.AccReplace
	Sum     = core.AccSum
	Prod    = core.AccProd
	Min     = core.AccMin
	Max     = core.AccMax
)

// Sentinel errors; every error the library returns wraps one of these
// (classify with errors.Is — see internal/core/errors.go for the taxonomy).
var (
	ErrBadHandle = core.ErrBadHandle
	ErrBounds    = core.ErrBounds
	ErrType      = core.ErrType
	ErrEpoch     = core.ErrEpoch
	// ErrLinkFailed marks graceful degradation: a reliable-delivery retry
	// budget ran out, the affected requests and Complete* calls fail with
	// it (wrapped), and Session.Err() reports it sticky.
	ErrLinkFailed = core.ErrLinkFailed
	// ErrApplyFault marks a recovered target-side apply panic (a shard
	// worker caught it): the session survives but its requests and waits
	// fail with it, and Session.Err() reports it sticky.
	ErrApplyFault = core.ErrApplyFault
	// ErrRankFailed marks a peer declared dead by the failure detector
	// (rank-kill fault injection): requests and Complete* calls addressing
	// the dead rank fail with it, ops to live peers keep completing, and
	// Session.Err() reports it sticky. Disjoint from ErrLinkFailed — a
	// flaky link is not a dead peer.
	ErrRankFailed = core.ErrRankFailed
)

// AllRanks, passed as the target of Complete or Order, covers every rank.
const AllRanks = core.AllRanks

// Re-exported request-completion helpers.
var (
	WaitAll = core.WaitAll
	WaitAny = core.WaitAny
	TestAll = core.TestAll
)

// DecodeTargetMem reverses TargetMem.Encode for descriptors shipped
// through ordinary messages.
var DecodeTargetMem = core.DecodeTargetMem

// Session is one rank's handle on the RMA library. Obtain it with Open;
// it is safe to call Open repeatedly (options are honoured by the first
// call of the rank).
type Session struct {
	eng  *core.Engine
	proc *runtime.Proc
	comm *runtime.Comm
}

// Open attaches the RMA engine to the calling rank and returns its
// session. Session-level options (WithBatch, WithAtomicity, and attribute
// options as engine-wide defaults) are honoured only by the rank's first
// Open.
func Open(p *runtime.Proc, opts ...SessionOption) *Session {
	cfg := buildSessionConfig(opts)
	s := &Session{
		eng:  core.Attach(p, cfg.engineOptions()),
		proc: p,
		comm: p.Comm(),
	}
	if cfg.metrics {
		s.eng.EnableTelemetry(nil)
	}
	if cfg.events {
		s.eng.EnableEvents(cfg.eventsCap)
	}
	if cfg.tracing && s.eng.Tracer() == nil {
		s.eng.SetTracer(trace.New(cfg.traceCap))
	}
	if cfg.flight {
		s.eng.EnableFlightRecorder(telemetry.FlightConfig{Dir: cfg.flightDir})
	}
	if cfg.checker {
		s.eng.SetAccessRecorder(checker.ForWorld(p.NIC().Endpoint().Network()))
	}
	if cfg.faults != nil {
		p.NIC().Endpoint().Network().SetFaults(cfg.faults)
	}
	if cfg.replicate {
		// Session-only, and SPMD like the rest: every rank (spares
		// included) arms replication before exposing protected regions.
		// A world too small to hold a buddy is a programming error.
		if err := s.eng.EnableReplication(); err != nil {
			panic(err)
		}
	}
	if cfg.faults != nil || cfg.retry != nil {
		var pol RetryPolicy
		if cfg.retry != nil {
			pol = *cfg.retry
		}
		if pol.Seed == 0 && cfg.faults != nil {
			// One seed reproduces the whole chaos run: scrambler, fault
			// draws, and retry jitter all derive from it.
			pol.Seed = cfg.faults.Seed
		}
		p.NIC().EnableReliability(pol)
	}
	return s
}

// Err reports the session's sticky failure: non-nil once any link's
// reliable-delivery retry budget has been exhausted (see ErrLinkFailed)
// or a shard apply worker has panicked (see ErrApplyFault). A
// link-degraded session keeps working toward the surviving ranks;
// requests and Complete* calls addressing the failed target return the
// error. An apply fault poisons the whole session.
func (s *Session) Err() error { return s.eng.Err() }

// Proc returns the owning simulated process.
func (s *Session) Proc() *runtime.Proc { return s.proc }

// Buddy returns the rank currently mirroring this rank's exposures
// (ok=false when WithReplication is off or the buddy is down awaiting
// a rebuild).
func (s *Session) Buddy() (int, bool) { return s.eng.Buddy() }

// AwaitRebuilt blocks until a spare rank has fully rebuilt the dead
// rank's replicated regions and returns the spare's world rank — the
// re-targeting hook an origin uses after a Put or Complete fails with
// ErrRankFailed. Descriptors move verbatim: the spare re-exposes every
// region at its original handle, so tm2 := tm; tm2.Owner = spare
// addresses the rebuilt bytes. It errors when no rebuild can ever
// complete (the world has no spare left).
func (s *Session) AwaitRebuilt(dead int) (int, error) {
	return s.proc.World().Members().AwaitRebuilt(dead)
}

// Engine exposes the underlying core engine — the escape hatch for
// facilities the façade does not wrap (active messages, tracing, derived
// statistics).
func (s *Session) Engine() *core.Engine { return s.eng }

// Metrics returns this rank's telemetry registry, enabling it on first
// use (so callers need not have passed WithMetrics to Open). Counters in
// the registry alias the engine's live counters; snapshot with
// Metrics().Snapshot().
func (s *Session) Metrics() *telemetry.Registry {
	return s.eng.EnableTelemetry(nil)
}

// Tracer returns the session's protocol event ring, or nil when tracing
// was never enabled (see WithTracing).
func (s *Session) Tracer() *trace.Ring {
	return s.eng.Tracer()
}

// Checker returns the world-shared semantic checker, or nil when
// WithChecker was never passed to an Open on this rank. Every rank that
// enabled checking sees the same instance, so any rank can collect the
// world's conflicts after a CompleteCollective.
func (s *Session) Checker() *checker.Checker {
	c, _ := s.eng.AccessRecorder().(*checker.Checker)
	return c
}

// DumpTimeline writes this rank's recorded protocol events to w in
// chronological virtual-time order, one event per line. It errors if the
// session has no tracer.
func (s *Session) DumpTimeline(w io.Writer) error {
	t := s.eng.Tracer()
	if t == nil {
		return fmt.Errorf("rma: session has no tracer (open with rma.WithTracing): %w", ErrBadHandle)
	}
	_, err := io.WriteString(w, t.Timeline())
	return err
}

// FlightRecorder returns this session's postmortem flight recorder, or
// nil when WithFlightRecorder was never passed to an Open on this rank.
func (s *Session) FlightRecorder() *telemetry.FlightRecorder {
	return s.eng.FlightRecorder()
}

// CriticalPath merges every traced rank's protocol events into one
// cross-rank timeline and decomposes each operation span into named
// stages (issue-queue, pack, wire, retransmit-stall, shard-queue, apply,
// ack-notify, completion-wakeup — see telemetry.StageOrder). Ranks
// without a tracer simply contribute no events; it errors if this rank
// itself has no tracer. When this session has a metrics registry, the
// per-span stage durations are also published as latency.stage.*
// histograms.
func (s *Session) CriticalPath() (*telemetry.CriticalPathReport, error) {
	if s.eng.Tracer() == nil {
		return nil, fmt.Errorf("rma: session has no tracer (open with rma.WithTracing): %w", ErrBadHandle)
	}
	world := s.proc.World()
	perRank := make(map[int][]trace.Event)
	for r := 0; r < world.Size(); r++ {
		eng := core.Attached(world.Proc(r))
		if eng == nil {
			continue
		}
		if ring := eng.Tracer(); ring != nil {
			perRank[r] = ring.Snapshot()
		}
	}
	rep := telemetry.AnalyzeCriticalPath(telemetry.Timeline(perRank))
	if reg := s.eng.Metrics(); reg != nil {
		rep.Observe(reg)
	}
	return rep, nil
}

// DumpCriticalPath writes the cross-rank critical-path stage breakdown
// to w as an aligned table. It errors if the session has no tracer.
func (s *Session) DumpCriticalPath(w io.Writer) error {
	rep, err := s.CriticalPath()
	if err != nil {
		return err
	}
	return rep.WriteText(w)
}

// Expose allocates size bytes and exposes them as a target_mem object.
// Nothing collective happens: the owner alone creates the exposure
// (requirement 1) and ships the descriptor to whoever should access it.
func (s *Session) Expose(size int) (TargetMem, Region) {
	return s.eng.ExposeNew(size)
}

// ExposeRegion exposes existing memory (heap/stack association).
func (s *Session) ExposeRegion(r Region) TargetMem {
	return s.eng.Expose(r)
}

// ExposeCollective is the collective-allocation convenience: every rank
// contributes size bytes and receives all ranks' descriptors.
func (s *Session) ExposeCollective(size int) ([]TargetMem, Region, error) {
	return s.eng.ExposeCollective(s.comm, size)
}

// Retract withdraws an exposure this rank owns.
func (s *Session) Retract(tm TargetMem) error { return s.eng.Retract(tm) }

// Put transfers count elements of dt from the origin region into dst at
// byte displacement tdisp (MPI_RMA_put). Nonblocking by default: the
// returned request completes when the origin buffer is reusable (or, with
// WithRemoteComplete, when the data is applied at the target).
func (s *Session) Put(origin Region, count int, dt Type, dst TargetMem, tdisp int, opts ...OpOption) (*Request, error) {
	c := buildOpConfig(opts)
	tcount, tdt := c.targetLayout(count, dt)
	return s.eng.Put(origin, count, dt, dst, tdisp, tcount, tdt, dst.Owner, s.comm, c.attrs)
}

// PutNotify is Put with the Notify attribute: the target reports the
// operation's application on a delivery counter, feeding Complete's
// probe-free fast path.
func (s *Session) PutNotify(origin Region, count int, dt Type, dst TargetMem, tdisp int, opts ...OpOption) (*Request, error) {
	return s.Put(origin, count, dt, dst, tdisp, append(opts, OpOption(WithNotify()))...)
}

// Get transfers count elements of dt from src at byte displacement tdisp
// into the origin region (MPI_RMA_get). The request completes when the
// data has landed; check Request.Err for target-side failures.
func (s *Session) Get(origin Region, count int, dt Type, src TargetMem, tdisp int, opts ...OpOption) (*Request, error) {
	c := buildOpConfig(opts)
	tcount, tdt := c.targetLayout(count, dt)
	return s.eng.Get(origin, count, dt, src, tdisp, tcount, tdt, src.Owner, s.comm, c.attrs)
}

// Accumulate combines count elements of dt from the origin region into dst
// with op (MPI_RMA_xfer with an accumulate optype).
func (s *Session) Accumulate(op AccOp, origin Region, count int, dt Type, dst TargetMem, tdisp int, opts ...OpOption) (*Request, error) {
	c := buildOpConfig(opts)
	tcount, tdt := c.targetLayout(count, dt)
	return s.eng.Accumulate(op, origin, count, dt, dst, tdisp, tcount, tdt, dst.Owner, s.comm, c.attrs)
}

// AccumulateAxpy performs target = scale*origin + target over
// floating-point elements (the ARMCI-style daxpy accumulate).
func (s *Session) AccumulateAxpy(scale float64, origin Region, count int, dt Type, dst TargetMem, tdisp int, opts ...OpOption) (*Request, error) {
	c := buildOpConfig(opts)
	tcount, tdt := c.targetLayout(count, dt)
	return s.eng.AccumulateAxpy(scale, origin, count, dt, dst, tdisp, tcount, tdt, dst.Owner, s.comm, c.attrs)
}

// FetchAdd atomically adds delta to the int64 at tm+tdisp, returning the
// previous value (the unconditional read-modify-write of Section V).
func (s *Session) FetchAdd(tm TargetMem, tdisp int, delta int64, opts ...OpOption) (int64, error) {
	c := buildOpConfig(opts)
	return s.eng.FetchAdd(tm, tdisp, delta, tm.Owner, s.comm, c.attrs)
}

// FetchWord atomically reads the int64 at tm+tdisp — the read half of the
// read-modify-write family. Unlike FetchAdd with a zero delta it mutates
// nothing at the target, so it triggers no replication traffic and is the
// right primitive for polling a remote lock/version word or a queue
// sequence number.
func (s *Session) FetchWord(tm TargetMem, tdisp int, opts ...OpOption) (int64, error) {
	c := buildOpConfig(opts)
	return s.eng.FetchWord(tm, tdisp, tm.Owner, s.comm, c.attrs)
}

// CompareSwap atomically compares the int64 at tm+tdisp with compare and,
// if equal, stores swap; it returns the previous value.
func (s *Session) CompareSwap(tm TargetMem, tdisp int, compare, swap int64, opts ...OpOption) (int64, error) {
	c := buildOpConfig(opts)
	return s.eng.CompareSwap(tm, tdisp, compare, swap, tm.Owner, s.comm, c.attrs)
}

// Flush transmits every batched operation still held in this rank's issue
// rings. Complete and Order flush implicitly; call Flush to push pending
// aggregates without synchronizing.
func (s *Session) Flush() { s.eng.Flush() }

// Complete blocks until every operation this rank issued to the given
// target world ranks has been applied there — MPI_RMA_complete. With no
// arguments it covers every rank (the paper's MPI_RMA_ALL_RANKS);
// duplicate targets are collapsed. With notified or batched operations it
// completes on delivery counters without network traffic; otherwise it
// pays one probe round-trip per target.
func (s *Session) Complete(targets ...int) error {
	return s.eng.Complete(s.comm, targets...)
}

// CompleteCollective is the collective completion: every rank calls it; on
// return every operation issued by anyone to anyone has been applied.
func (s *Session) CompleteCollective() error { return s.eng.CompleteCollective(s.comm) }

// Order guarantees operations issued to the given targets before the call
// apply before operations issued after it — MPI_RMA_order, the weak
// (fence-style) synchronization. With no arguments it covers every rank
// (the paper's MPI_RMA_ALL_RANKS).
func (s *Session) Order(targets ...int) error {
	return s.eng.Order(s.comm, targets...)
}

// Event-driven completion (the push side of the completion surface; see
// DESIGN.md §11). An Event is one completion transition — a request
// finishing, an operation applying locally, a target confirming delivery
// or going quiescent, a link or apply fault — stamped with its
// deterministic virtual time. A CompletionQueue delivers them in
// publication order; SelectCase arms a Session.Select call.
type (
	Event           = core.Event
	EventKind       = core.EventKind
	CompletionQueue = core.CompletionQueue
	SelectCase      = core.SelectCase
)

// Event kinds (see the core.EventKind constants for full semantics).
const (
	EvRequestDone = core.EvRequestDone
	EvDelivery    = core.EvDelivery
	EvConfirm     = core.EvConfirm
	EvQuiescent   = core.EvQuiescent
	EvFault       = core.EvFault
)

// Select-case constructors: OnRequest fires when a request completes;
// OnApplied when this rank has applied at least count operations from an
// origin rank (the target-side arm a consumer of notified puts waits
// on); OnConfirmed when a target has confirmed at least count of this
// rank's operations; OnQuiescent when a target has confirmed everything
// issued to it so far (the moment Complete(target) would return without
// waiting).
var (
	OnRequest   = core.OnRequest
	OnApplied   = core.OnApplied
	OnConfirmed = core.OnConfirmed
	OnQuiescent = core.OnQuiescent
)

// Events returns the session's completion queue, installing one with the
// default capacity on first use (like Metrics; pass WithEvents to Open to
// size it). Every completion transition of this rank is published to the
// queue: drain with Poll (non-blocking) or Wait (blocking). The queue is
// bounded and never blocks the engine — when the consumer falls behind,
// new events are dropped and counted in the events.dropped counter
// (Dropped on the queue); the underlying counters remain exact, so a
// dropped event means a lost wakeup hint, never lost completion state.
func (s *Session) Events() *CompletionQueue {
	return s.eng.EnableEvents(0)
}

// Select blocks until any of the cases fires, returning the index of the
// winning case and its event — the any-of multiplexer of the event-driven
// surface, variadic like Complete and Order. The rank's virtual clock
// advances to the winning event's time (Wait semantics). Validation
// failures (no cases, a nil request, a rank out of range) return an error
// wrapping ErrBadHandle; asynchronous failures arrive as events instead:
// EvRequestDone with Err set, or EvFault when a link dies or the apply
// pipeline faults while a counter case is armed.
func (s *Session) Select(cases ...SelectCase) (int, Event, error) {
	return s.eng.Select(s.comm, cases...)
}
