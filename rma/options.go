package rma

import (
	"mpi3rma/internal/core"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/serializer"
	"mpi3rma/internal/simnet"
)

// Option configures a Session (passed to Open) or a single operation
// (passed to Put, Get, Accumulate, ...). Attribute options work in both
// positions: at Open they become the engine-wide defaults of requirement 5
// ("most stringent rules while debugging"); on an operation they apply to
// that transfer alone. Session-only options (WithBatch, WithAtomicity,
// WithProbeCompletion) are ignored when passed to an operation.
type Option func(*config)

type config struct {
	attrs     core.Attr
	opts      core.Options
	tcount    int
	tdt       Type
	metrics   bool
	tracing   bool
	traceCap  int
	checker   bool
	events    bool
	eventsCap int
	faults    *simnet.FaultPlan
	retry     *portals.RetryPolicy
	flight    bool
	flightDir string
	replicate bool
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) engineOptions() core.Options {
	o := c.opts
	o.DefaultAttrs |= c.attrs
	return o
}

// targetLayout resolves the target-side count/datatype: symmetric with the
// origin unless WithTargetLayout overrode it.
func (c config) targetLayout(ocount int, odt Type) (int, Type) {
	if c.tdt != nil {
		return c.tcount, c.tdt
	}
	return ocount, odt
}

// WithOrdering requests the Ordering attribute: operations to the same
// target apply in issue order. Within one atomicity class when batching
// reorders across classes; see DESIGN.md §5.
func WithOrdering() Option {
	return func(c *config) { c.attrs |= core.AttrOrdering }
}

// WithRemoteComplete requests the RemoteComplete attribute: the request
// completes only once the data is applied at the target, not merely when
// the origin buffer is reusable.
func WithRemoteComplete() Option {
	return func(c *config) { c.attrs |= core.AttrRemoteComplete }
}

// WithAtomic requests the Atomic attribute: the update is applied through
// the target's serializer so concurrent accumulates from many origins
// do not interleave element-wise.
func WithAtomic() Option {
	return func(c *config) { c.attrs |= core.AttrAtomic }
}

// WithBlocking makes the call return only when the operation's request
// would complete; the returned request is already done.
func WithBlocking() Option {
	return func(c *config) { c.attrs |= core.AttrBlocking }
}

// WithNotify asks the target to report the operation's application on the
// per-origin delivery counter, so a later Complete can finish without a
// probe round-trip (notified completion).
func WithNotify() Option {
	return func(c *config) { c.attrs |= core.AttrNotify }
}

// WithStrictDebug is the requirement-5 debugging preset: ordered,
// remotely complete, and atomic. Install at Open while debugging, delete
// the option when done — no transfer call changes.
func WithStrictDebug() Option {
	return func(c *config) { c.attrs |= core.StrictDebugAttrs }
}

// WithTargetLayout transfers into a target-side layout different from the
// origin's (e.g. scattering a contiguous origin buffer into a Vector).
// The type signatures must still match element-wise.
func WithTargetLayout(tcount int, tdt Type) Option {
	return func(c *config) { c.tcount, c.tdt = tcount, tdt }
}

// WithBatch enables origin-side operation batching (Open only): up to
// maxOps small puts/accumulates per target are coalesced into one
// aggregated wire message, amortizing per-message overhead. Batches flush
// when full, when a non-batchable operation targets the same rank, and at
// Flush/Order/Complete.
func WithBatch(maxOps int) Option {
	return func(c *config) { c.opts.BatchOps = maxOps }
}

// WithBatchBytes bounds one batch's accumulated payload (Open only;
// default rma core DefaultBatchBytes). Larger operations bypass batching.
func WithBatchBytes(n int) Option {
	return func(c *config) { c.opts.BatchBytes = n }
}

// WithAtomicity selects the serializer mechanism backing the Atomic
// attribute (Open only): serializer.MechThread, MechCoarseLock, or
// MechProgress — the three implementation strategies of the paper's
// Figure 2.
func WithAtomicity(m serializer.Mechanism) Option {
	return func(c *config) { c.opts.Atomicity = m }
}

// WithProbeCompletion forces Complete to use the probe round-trip even
// when delivery counters could answer locally (Open only).
//
// Deprecated: applications wanting per-operation completion should use
// the Request surface — Await, Done, Err — instead of forcing probe
// round-trips; the option remains for A/B measurements (experiment E13).
func WithProbeCompletion() Option {
	return func(c *config) { c.opts.ProbeCompletion = true }
}

// WithApplyShards partitions this rank's exposed memory into n byte-range
// shards applied by a parallel worker pool (Open only): operations from
// different origins to disjoint ranges apply concurrently, while spanning,
// ordered, conflicting, and atomic operations keep serial-engine semantics
// through a designated shard and the serializer (DESIGN.md §10). The
// default (0 or 1) is the serial engine, bit-compatible by construction.
func WithApplyShards(n int) Option {
	return func(c *config) { c.opts.ApplyShards = n }
}

// WithApplyWorkers bounds the worker pool draining the apply shards (Open
// only; 0 = one worker per shard). Passing WithApplyWorkers alone enables
// sharding with that many shards.
func WithApplyWorkers(n int) Option {
	return func(c *config) { c.opts.ApplyWorkers = n }
}

// WithMetrics enables the telemetry registry at Open: every engine, NIC
// and network counter becomes readable under its stable dotted name via
// Session.Metrics(). Enabling metrics adds no work to transfer hot paths
// (the registry aliases live counters); only latency histograms are
// recorded in addition. Unlike other session options, metrics can be
// enabled by any Open of the rank, not only the first.
func WithMetrics() Option {
	return func(c *config) { c.metrics = true }
}

// WithTracing installs a protocol event ring of the given capacity
// (0 = trace.DefaultCapacity) at Open, feeding Session.DumpTimeline and
// span reconstruction. Like WithMetrics it is honoured by any Open, but
// an already-installed tracer is kept.
func WithTracing(capacity int) Option {
	return func(c *config) { c.tracing, c.traceCap = true, capacity }
}

// WithEvents installs the completion-event queue at Open with the given
// capacity (0 or negative = core.DefaultEventQueueCap), so early events
// are not missed and the capacity can be sized to the workload's
// in-flight window. Like WithMetrics it is honoured by any Open of the
// rank, but the first installed queue (including one Session.Events
// created implicitly) keeps its capacity. Without it, Session.Events
// installs a default-capacity queue on first use.
func WithEvents(capacity int) Option {
	return func(c *config) { c.events, c.eventsCap = true, capacity }
}

// WithFaults installs a deterministic fault-injection plan on the world's
// network at Open and enables the reliable-delivery relay on this rank's
// NIC so the session survives the injected faults (chaos testing; see
// DESIGN.md §9). The network accepts the first plan installed; SPMD ranks
// should all pass the same plan, and must Open before communicating so no
// traffic predates relay protection. Faults exhaust retry budgets into
// ErrLinkFailed — observe degradation via Session.Err().
func WithFaults(plan *FaultPlan) Option {
	return func(c *config) { c.faults = plan }
}

// WithRetryPolicy tunes (and enables, even without a fault plan) the
// reliable-delivery relay at Open: virtual-time retransmit timeout,
// exponential backoff, jitter, retry budget, and receiver reassembly
// window. Zero fields take the portals defaults. On a lossless default
// wire the relay never retransmits — pair this with WithFaults (or a
// fault plan installed elsewhere) for it to matter.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) { c.retry = &p }
}

// WithReplication enables buddy replication at Open (session-only):
// every region this rank exposes afterwards is mirrored in-band to its
// buddy rank ((rank+1) mod worldsize), and each mutating operation
// completes only once the buddy has acknowledged its bytes — so a
// returned Complete means the update survives this rank's death. When
// the failure detector declares a rank dead (see WithFaults rank-kill
// schedules), the buddy promotes its replicas onto a spare rank
// (runtime.Config.Spares) and the world resumes; origins re-fetch the
// spare's descriptors and carry on. Metadata cost is O(1) per rank: one
// buddy binding and a version counter per exposed region. Pair it with
// WithFaults — without a fault plan no rank ever dies and the option
// only adds mirroring traffic. SPMD ranks (including spares) should all
// pass it.
func WithReplication() Option {
	return func(c *config) { c.replicate = true }
}

// WithChecker enables the RMA semantic checker at Open: every
// remotely-applied access is recorded as a byte interval on its target
// exposure, and pairs of overlapping accesses not separated by a
// synchronization call (and not both atomic) are reported as conflicts —
// the MPI-3 overlapping-access rules, checked dynamically. The checker is
// shared by all ranks of the world, so cross-rank conflicts are visible;
// read results with Session.Checker(). Like WithMetrics it is honoured by
// any Open of the rank. When not enabled, transfer hot paths pay one
// atomic load and allocate nothing.
func WithChecker() Option {
	return func(c *config) { c.checker = true }
}

// WithFlightRecorder enables the postmortem flight recorder at Open: a
// bounded ring of recent protocol milestones (deliveries, confirms,
// retransmissions, faults) that automatically writes a JSON postmortem —
// recent events, per-rank health, sticky errors, retry state, queue
// depths, metric deltas — into dir the first time a link fails or the
// apply engine faults. An empty dir falls back to the system temp
// directory. Dump on demand with Session.FlightRecorder().DumpFile.
// Session-level: honoured only at Open, ignored on per-operation calls.
// When not enabled, recorder feed sites pay one atomic load and allocate
// nothing.
func WithFlightRecorder(dir string) Option {
	return func(c *config) { c.flight, c.flightDir = true, dir }
}
