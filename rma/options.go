package rma

import (
	"mpi3rma/internal/core"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/serializer"
	"mpi3rma/internal/simnet"
)

// The option taxonomy is enforced by the compiler (PR 10's api_redesign):
//
//   - SessionOption configures a Session and is accepted only by Open —
//     batching, the atomicity mechanism, telemetry, events, faults,
//     replication, the apply-shard pool. Passing one to a transfer call
//     no longer compiles (it used to be silently ignored, caught only by
//     rmalint's attrmisuse analyzer at lint time).
//   - OpOption configures a single operation and is accepted only by the
//     transfer calls (Put, Get, Accumulate, FetchAdd, ...). Today that is
//     the per-operation attributes plus WithTargetLayout.
//   - AttrOption is the intersection: the paper's per-operation attributes
//     (WithOrdering, WithAtomic, ...) satisfy both interfaces, because at
//     Open they become the engine-wide defaults of requirement 5 ("most
//     stringent rules while debugging") and on an operation they apply to
//     that transfer alone.

// SessionOption configures a Session at Open. Attribute options
// (AttrOption) are SessionOptions too: at Open they install engine-wide
// default attributes.
type SessionOption interface {
	applySession(*sessionConfig)
}

// OpOption configures a single operation (Put, Get, Accumulate, FetchAdd,
// CompareSwap, ...). Attribute options are OpOptions; WithTargetLayout is
// the one operation-only non-attribute option.
type OpOption interface {
	applyOp(*opConfig)
}

// AttrOption is a per-operation attribute usable in both positions: as an
// engine-wide default at Open, or on an individual transfer. It is the
// value type WithOrdering, WithRemoteComplete, WithAtomic, WithBlocking,
// WithNotify and WithStrictDebug return.
type AttrOption core.Attr

func (a AttrOption) applySession(c *sessionConfig) { c.attrs |= core.Attr(a) }
func (a AttrOption) applyOp(c *opConfig)           { c.attrs |= core.Attr(a) }

// Option is the pre-split any-position option type.
//
// Deprecated: the option taxonomy is typed now — use SessionOption in
// code that forwards options to Open, OpOption for transfer-call options,
// and AttrOption where only attributes are meant. Option remains one
// release as an alias of AttrOption so existing declarations compile.
type Option = AttrOption

// sessionOption adapts a config mutator into a SessionOption (the
// constructor return type of every Open-only option).
type sessionOption func(*sessionConfig)

func (f sessionOption) applySession(c *sessionConfig) { f(c) }

// opOption adapts a config mutator into an OpOption (WithTargetLayout).
type opOption func(*opConfig)

func (f opOption) applyOp(c *opConfig) { f(c) }

// sessionConfig collects everything Open can install.
type sessionConfig struct {
	attrs     core.Attr
	opts      core.Options
	metrics   bool
	tracing   bool
	traceCap  int
	checker   bool
	events    bool
	eventsCap int
	faults    *simnet.FaultPlan
	retry     *portals.RetryPolicy
	flight    bool
	flightDir string
	replicate bool
}

// opConfig collects what a single transfer can override.
type opConfig struct {
	attrs  core.Attr
	tcount int
	tdt    Type
}

func buildSessionConfig(opts []SessionOption) sessionConfig {
	var c sessionConfig
	for _, o := range opts {
		o.applySession(&c)
	}
	return c
}

func buildOpConfig(opts []OpOption) opConfig {
	var c opConfig
	for _, o := range opts {
		o.applyOp(&c)
	}
	return c
}

func (c sessionConfig) engineOptions() core.Options {
	o := c.opts
	o.DefaultAttrs |= c.attrs
	return o
}

// targetLayout resolves the target-side count/datatype: symmetric with the
// origin unless WithTargetLayout overrode it.
func (c opConfig) targetLayout(ocount int, odt Type) (int, Type) {
	if c.tdt != nil {
		return c.tcount, c.tdt
	}
	return ocount, odt
}

// WithOrdering requests the Ordering attribute: operations to the same
// target apply in issue order. Within one atomicity class when batching
// reorders across classes; see DESIGN.md §5.
func WithOrdering() AttrOption { return AttrOption(core.AttrOrdering) }

// WithRemoteComplete requests the RemoteComplete attribute: the request
// completes only once the data is applied at the target, not merely when
// the origin buffer is reusable.
func WithRemoteComplete() AttrOption { return AttrOption(core.AttrRemoteComplete) }

// WithAtomic requests the Atomic attribute: the update is applied through
// the target's serializer so concurrent accumulates from many origins
// do not interleave element-wise.
func WithAtomic() AttrOption { return AttrOption(core.AttrAtomic) }

// WithBlocking makes the call return only when the operation's request
// would complete; the returned request is already done.
func WithBlocking() AttrOption { return AttrOption(core.AttrBlocking) }

// WithNotify asks the target to report the operation's application on the
// per-origin delivery counter, so a later Complete can finish without a
// probe round-trip (notified completion).
func WithNotify() AttrOption { return AttrOption(core.AttrNotify) }

// WithStrictDebug is the requirement-5 debugging preset: ordered,
// remotely complete, and atomic. Install at Open while debugging, delete
// the option when done — no transfer call changes.
func WithStrictDebug() AttrOption { return AttrOption(core.StrictDebugAttrs) }

// WithTargetLayout transfers into a target-side layout different from the
// origin's (e.g. scattering a contiguous origin buffer into a Vector).
// The type signatures must still match element-wise.
func WithTargetLayout(tcount int, tdt Type) OpOption {
	return opOption(func(c *opConfig) { c.tcount, c.tdt = tcount, tdt })
}

// WithBatch enables origin-side operation batching: up to maxOps small
// puts/accumulates per target are coalesced into one aggregated wire
// message, amortizing per-message overhead. Batches flush when full, when
// a non-batchable operation targets the same rank, and at
// Flush/Order/Complete.
func WithBatch(maxOps int) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.opts.BatchOps = maxOps })
}

// WithBatchBytes bounds one batch's accumulated payload (default rma core
// DefaultBatchBytes). Larger operations bypass batching.
func WithBatchBytes(n int) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.opts.BatchBytes = n })
}

// WithAtomicity selects the serializer mechanism backing the Atomic
// attribute: serializer.MechThread, MechCoarseLock, or MechProgress — the
// three implementation strategies of the paper's Figure 2.
func WithAtomicity(m serializer.Mechanism) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.opts.Atomicity = m })
}

// WithApplyShards partitions this rank's exposed memory into n byte-range
// shards applied by a parallel worker pool: operations from different
// origins to disjoint ranges apply concurrently, while spanning, ordered,
// conflicting, and atomic operations keep serial-engine semantics through
// a designated shard and the serializer (DESIGN.md §10). The default (0
// or 1) is the serial engine, bit-compatible by construction.
func WithApplyShards(n int) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.opts.ApplyShards = n })
}

// WithApplyWorkers bounds the worker pool draining the apply shards (0 =
// one worker per shard). Passing WithApplyWorkers alone enables sharding
// with that many shards.
func WithApplyWorkers(n int) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.opts.ApplyWorkers = n })
}

// WithMetrics enables the telemetry registry at Open: every engine, NIC
// and network counter becomes readable under its stable dotted name via
// Session.Metrics(). Enabling metrics adds no work to transfer hot paths
// (the registry aliases live counters); only latency histograms are
// recorded in addition. Unlike other session options, metrics can be
// enabled by any Open of the rank, not only the first.
func WithMetrics() SessionOption {
	return sessionOption(func(c *sessionConfig) { c.metrics = true })
}

// WithTracing installs a protocol event ring of the given capacity
// (0 = trace.DefaultCapacity) at Open, feeding Session.DumpTimeline and
// span reconstruction. Like WithMetrics it is honoured by any Open, but
// an already-installed tracer is kept.
func WithTracing(capacity int) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.tracing, c.traceCap = true, capacity })
}

// WithEvents installs the completion-event queue at Open with the given
// capacity (0 or negative = core.DefaultEventQueueCap), so early events
// are not missed and the capacity can be sized to the workload's
// in-flight window. Like WithMetrics it is honoured by any Open of the
// rank, but the first installed queue (including one Session.Events
// created implicitly) keeps its capacity. Without it, Session.Events
// installs a default-capacity queue on first use.
func WithEvents(capacity int) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.events, c.eventsCap = true, capacity })
}

// WithFaults installs a deterministic fault-injection plan on the world's
// network at Open and enables the reliable-delivery relay on this rank's
// NIC so the session survives the injected faults (chaos testing; see
// DESIGN.md §9). The network accepts the first plan installed; SPMD ranks
// should all pass the same plan, and must Open before communicating so no
// traffic predates relay protection. Faults exhaust retry budgets into
// ErrLinkFailed — observe degradation via Session.Err().
func WithFaults(plan *FaultPlan) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.faults = plan })
}

// WithRetryPolicy tunes (and enables, even without a fault plan) the
// reliable-delivery relay at Open: virtual-time retransmit timeout,
// exponential backoff, jitter, retry budget, and receiver reassembly
// window. Zero fields take the portals defaults. On a lossless default
// wire the relay never retransmits — pair this with WithFaults (or a
// fault plan installed elsewhere) for it to matter.
func WithRetryPolicy(p RetryPolicy) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.retry = &p })
}

// WithReplication enables buddy replication at Open: every region this
// rank exposes afterwards is mirrored in-band to its buddy rank
// ((rank+1) mod worldsize), and each mutating operation completes only
// once the buddy has acknowledged its bytes — so a returned Complete
// means the update survives this rank's death. When the failure detector
// declares a rank dead (see WithFaults rank-kill schedules), the buddy
// promotes its replicas onto a spare rank (runtime.Config.Spares) and the
// world resumes; origins re-fetch the spare's descriptors and carry on.
// Metadata cost is O(1) per rank: one buddy binding and a version counter
// per exposed region. Pair it with WithFaults — without a fault plan no
// rank ever dies and the option only adds mirroring traffic. SPMD ranks
// (including spares) should all pass it.
func WithReplication() SessionOption {
	return sessionOption(func(c *sessionConfig) { c.replicate = true })
}

// WithChecker enables the RMA semantic checker at Open: every
// remotely-applied access is recorded as a byte interval on its target
// exposure, and pairs of overlapping accesses not separated by a
// synchronization call (and not both atomic) are reported as conflicts —
// the MPI-3 overlapping-access rules, checked dynamically. The checker is
// shared by all ranks of the world, so cross-rank conflicts are visible;
// read results with Session.Checker(). Like WithMetrics it is honoured by
// any Open of the rank. When not enabled, transfer hot paths pay one
// atomic load and allocate nothing.
func WithChecker() SessionOption {
	return sessionOption(func(c *sessionConfig) { c.checker = true })
}

// WithFlightRecorder enables the postmortem flight recorder at Open: a
// bounded ring of recent protocol milestones (deliveries, confirms,
// retransmissions, faults) that automatically writes a JSON postmortem —
// recent events, per-rank health, sticky errors, retry state, queue
// depths, metric deltas — into dir the first time a link fails or the
// apply engine faults. An empty dir falls back to the system temp
// directory. Dump on demand with Session.FlightRecorder().DumpFile.
// When not enabled, recorder feed sites pay one atomic load and allocate
// nothing.
func WithFlightRecorder(dir string) SessionOption {
	return sessionOption(func(c *sessionConfig) { c.flight, c.flightDir = true, dir })
}
