package rma_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

// TestFacadeEndToEnd drives the public API the way an application would:
// batched session, descriptor exchange, puts with per-op attribute
// options, notified completion, accumulate, and sentinel classification.
func TestFacadeEndToEnd(t *testing.T) {
	const ranks = 4
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithBatch(8))

		if p.Rank() == 0 {
			tm, region := s.Expose(ranks * 8)
			enc := tm.Encode()
			for r := 1; r < ranks; r++ {
				p.Send(r, 0, enc)
			}
			if err := s.CompleteCollective(); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			buf := p.Mem().Snapshot(region.Offset, ranks*8)
			for r := 1; r < ranks; r++ {
				got := int64(binary.LittleEndian.Uint64(buf[r*8:]))
				if want := int64(r * 10); got != want {
					t.Errorf("rank %d slot holds %d, want %d", r, got, want)
				}
			}
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, err := rma.DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode descriptor: %v", err)
		}
		src := p.Alloc(8)
		write := func(v int64) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			p.WriteLocal(src, 0, b[:])
		}

		// A put and an atomic accumulate ride the same batch; together
		// they leave rank*10 in this rank's slot.
		write(int64(p.Rank() * 4))
		if _, err := s.Put(src, 1, rma.Int64, tm, p.Rank()*8); err != nil {
			t.Fatalf("put: %v", err)
		}
		write(int64(p.Rank() * 6))
		if _, err := s.Accumulate(rma.Sum, src, 1, rma.Int64, tm, p.Rank()*8, rma.WithAtomic()); err != nil {
			t.Fatalf("accumulate: %v", err)
		}
		if err := s.Complete(tm.Owner); err != nil {
			t.Errorf("complete: %v", err)
		}
		if s.Engine().Batches.Value() < 1 {
			t.Error("session-level WithBatch did not reach the engine")
		}

		// Per-op options: a blocking put returns an already-done request.
		write(int64(p.Rank() * 10))
		req, err := s.Put(src, 1, rma.Int64, tm, p.Rank()*8, rma.WithBlocking())
		if err != nil {
			t.Fatalf("blocking put: %v", err)
		}
		if !req.Test() {
			t.Error("blocking put returned an unfinished request")
		}
		if err := s.Complete(tm.Owner); err != nil {
			t.Errorf("complete: %v", err)
		}

		// Errors classify through the re-exported sentinels.
		if _, err := s.Put(src, 1, rma.Int64, tm, ranks*800); !errors.Is(err, rma.ErrBounds) {
			t.Errorf("out-of-bounds put returned %v, want ErrBounds", err)
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFacadeTargetLayout: WithTargetLayout transfers a contiguous origin
// buffer into a non-symmetric target layout.
func TestFacadeTargetLayout(t *testing.T) {
	world := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		if p.Rank() == 0 {
			tm, region := s.Expose(8)
			p.Send(1, 0, tm.Encode())
			if err := s.CompleteCollective(); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			got := p.Mem().Snapshot(region.Offset, 8)
			want := []byte{1, 2, 0, 0, 3, 4, 0, 0}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("target byte %d is %d, want %d", i, got[i], want[i])
				}
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := rma.DecodeTargetMem(enc)
		src := p.Alloc(4)
		p.WriteLocal(src, 0, []byte{1, 2, 3, 4})
		// 4 contiguous bytes scatter into 2 blocks of 2 with stride 4.
		vec := rma.Vector(2, 2, 4, rma.Byte)
		if _, err := s.Put(src, 4, rma.Byte, tm, 0, rma.WithTargetLayout(1, vec), rma.WithBlocking()); err != nil {
			t.Fatalf("strided put: %v", err)
		}
		if err := s.Complete(tm.Owner); err != nil {
			t.Errorf("complete: %v", err)
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
