package rma_test

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

// TestFacadeEvents drives the event-driven completion surface through the
// public API: WithEvents at Open, Session.Events polling, OnDone
// callbacks, and Session.Select over requests and counters — the
// pipelined idiom the blocking Complete calls never needed.
func TestFacadeEvents(t *testing.T) {
	const ops = 8
	world := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithEvents(32), rma.WithMetrics())

		if p.Rank() == 0 {
			tm, region := s.Expose(ops)
			p.Send(1, 0, tm.Encode())
			// The target overlaps its own work with the incoming puts:
			// Select(OnApplied) blocks until all of them landed.
			idx, ev, err := s.Select(rma.OnApplied(1, ops))
			if err != nil || idx != 0 {
				t.Errorf("select(applied): idx %d err %v", idx, err)
			}
			if ev.Kind != rma.EvDelivery || ev.Count < ops {
				t.Errorf("applied event = kind %v count %d, want delivery >= %d", ev.Kind, ev.Count, ops)
			}
			want := bytes.Repeat([]byte{7}, ops)
			if got := p.Mem().Snapshot(region.Offset, ops); !bytes.Equal(got, want) {
				t.Errorf("target bytes %x, want %x", got, want)
			}
			// The queue carried the delivery stream.
			deliveries := 0
			for {
				ev, ok := s.Events().Poll()
				if !ok {
					break
				}
				if ev.Kind == rma.EvDelivery && ev.Rank == 1 {
					deliveries++
				}
			}
			if deliveries == 0 {
				t.Error("no delivery events reached the target's queue")
			}
			p.Barrier()
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, err := rma.DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		src := p.Alloc(1)
		p.WriteLocal(src, 0, []byte{7})
		var fired atomic.Int32
		pending := make([]*rma.Request, 0, ops)
		for i := 0; i < ops; i++ {
			req, err := s.PutNotify(src, 1, rma.Byte, tm, i, rma.WithRemoteComplete())
			if err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			req.OnDone(func(err error) {
				if err != nil {
					t.Errorf("request failed: %v", err)
				}
				fired.Add(1)
			})
			pending = append(pending, req)
		}
		// Reap any-of-first until all requests are done.
		for len(pending) > 0 {
			cases := make([]rma.SelectCase, len(pending))
			for i, r := range pending {
				cases[i] = rma.OnRequest(r)
			}
			idx, ev, err := s.Select(cases...)
			if err != nil {
				t.Fatalf("select: %v", err)
			}
			if ev.Kind != rma.EvRequestDone || ev.Err != nil {
				t.Fatalf("event = kind %v err %v, want clean request-done", ev.Kind, ev.Err)
			}
			if !pending[idx].Test() {
				t.Error("winner request not done")
			}
			pending = append(pending[:idx], pending[idx+1:]...)
		}
		if got := fired.Load(); got != ops {
			t.Errorf("%d OnDone callbacks for %d requests, want exactly one each", got, ops)
		}
		// Quiescence through the facade: everything sent is applied.
		if _, ev, err := s.Select(rma.OnQuiescent(0)); err != nil || ev.Kind != rma.EvQuiescent {
			t.Errorf("select(quiescent): kind %v err %v", ev.Kind, err)
		}
		// After-the-fact registration runs inline with the final error.
		var late atomic.Int32
		req, err := s.PutNotify(src, 1, rma.Byte, tm, 0, rma.WithRemoteComplete())
		if err != nil {
			t.Fatalf("late put: %v", err)
		}
		if err := req.Await(); err != nil {
			t.Fatalf("await: %v", err)
		}
		req.OnDone(func(err error) {
			if err != nil {
				t.Errorf("late OnDone error: %v", err)
			}
			late.Add(1)
		})
		if late.Load() != 1 {
			t.Error("OnDone after completion did not run inline")
		}
		// The queue's accounting surfaced in telemetry.
		if v := s.Metrics().Counter("events.published").Value(); v == 0 {
			t.Error("events.published is zero with the queue enabled")
		}
		// Select input validation classifies under ErrBadHandle.
		if _, _, err := s.Select(); !errors.Is(err, rma.ErrBadHandle) {
			t.Errorf("empty select returned %v, want ErrBadHandle", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}
