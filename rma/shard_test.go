package rma_test

import (
	"bytes"
	"testing"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

// TestFacadeSharding drives the sharded target through the public facade:
// WithApplyShards/WithApplyWorkers at Open, disjoint-slot puts from every
// origin, the variadic no-argument Complete, and Request.Await — and
// checks slot-exact delivery plus shard telemetry through Metrics().
func TestFacadeSharding(t *testing.T) {
	const (
		ranks = 5
		slot  = 16
	)
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p,
			rma.WithApplyShards(ranks-1),
			rma.WithApplyWorkers(2),
			rma.WithMetrics(),
		)

		if p.Rank() == 0 {
			tm, region := s.Expose((ranks - 1) * slot)
			enc := tm.Encode()
			for r := 1; r < ranks; r++ {
				p.Send(r, 0, enc)
			}
			p.Barrier()
			buf := p.Mem().Snapshot(region.Offset, (ranks-1)*slot)
			for r := 1; r < ranks; r++ {
				got := buf[(r-1)*slot : r*slot]
				want := bytes.Repeat([]byte{byte(r)}, slot)
				if !bytes.Equal(got, want) {
					t.Errorf("origin %d slot = %x, want %x", r, got, want)
				}
			}
			snap := s.Metrics().Snapshot()
			var tasks, applied float64
			for name, v := range snap.Counters {
				switch {
				case name == "ops.applied":
					applied = float64(v)
				case name == "shard.bypass":
					tasks += float64(v)
				case len(name) > len("shard.tasks.") && name[:len("shard.tasks.")] == "shard.tasks.":
					tasks += float64(v)
				}
			}
			if applied == 0 || tasks != applied {
				t.Errorf("shard watermarks %v do not reconcile with ops.applied %v", tasks, applied)
			}
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, err := rma.DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode descriptor: %v", err)
		}
		src := p.Alloc(slot)
		p.WriteLocal(src, 0, bytes.Repeat([]byte{byte(p.Rank())}, slot))
		req, err := s.Put(src, slot, rma.Byte, tm, (p.Rank()-1)*slot, rma.WithNotify())
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := req.Await(); err != nil {
			t.Errorf("Await: %v", err)
		}
		select {
		case <-req.Done():
		default:
			t.Error("Done() channel open after Await returned")
		}
		// Variadic completion: no arguments means every rank.
		if err := s.Complete(); err != nil {
			t.Errorf("Complete(): %v", err)
		}
		if err := s.Order(); err != nil {
			t.Errorf("Order(): %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}
