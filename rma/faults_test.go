package rma_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

// TestFacadeWithFaults: a session opened with a fault plan survives a
// lossy wire — the relay retransmits until the put converges — and the
// injected faults are visible in the metrics registry.
func TestFacadeWithFaults(t *testing.T) {
	world := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer world.Close()
	plan := &rma.FaultPlan{
		Seed:    21,
		Default: rma.LinkFaults{Drop: 0.2, Dup: 0.2},
	}
	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithFaults(plan), rma.WithMetrics())
		if p.Rank() == 0 {
			tm, region := s.Expose(64)
			p.Send(1, 0, tm.Encode())
			p.Barrier()
			got := p.Mem().Snapshot(region.Offset, 16)
			if !bytes.Equal(got, bytes.Repeat([]byte{0xAB}, 16)) {
				t.Errorf("target bytes %x did not converge", got)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := rma.DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		src := p.Alloc(16)
		p.WriteLocal(src, 0, bytes.Repeat([]byte{0xAB}, 16))
		if _, err := s.Put(src, 16, rma.Byte, tm, 0); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := s.Complete(0); err != nil {
			t.Fatalf("complete: %v", err)
		}
		if err := s.Err(); err != nil {
			t.Fatalf("session degraded unexpectedly: %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if world.Net().FaultsDropped.Value()+world.Net().FaultsDuplicated.Value() == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

// TestFacadeLinkFailure: with a permanently dead link and a tiny retry
// budget, Complete surfaces the wrapped ErrLinkFailed sentinel and
// Session.Err() reports the degradation — within bounded time.
func TestFacadeLinkFailure(t *testing.T) {
	world := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer world.Close()
	plan := &rma.FaultPlan{
		Seed:  22,
		Links: map[rma.LinkKey]rma.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := world.Run(func(p *runtime.Proc) {
			s := rma.Open(p,
				rma.WithFaults(plan),
				rma.WithRetryPolicy(rma.RetryPolicy{Budget: 2}))
			if p.Rank() == 1 {
				tm, _ := s.Expose(64)
				p.Send(0, 0, tm.Encode())
				return
			}
			enc, _ := p.Recv(1, 0)
			tm, err := rma.DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			src := p.Alloc(8)
			if _, err := s.Put(src, 8, rma.Byte, tm, 0); err != nil && !errors.Is(err, rma.ErrLinkFailed) {
				t.Errorf("put: %v", err)
				return
			}
			if err := s.Complete(1); !errors.Is(err, rma.ErrLinkFailed) {
				t.Errorf("Complete returned %v, want wrapped ErrLinkFailed", err)
			}
			if s.Err() == nil {
				t.Error("Session.Err() nil after link failure")
			}
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Complete hung after retry budget exhaustion")
	}
}
