module mpi3rma

go 1.22
