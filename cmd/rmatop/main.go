// Command rmatop is the live per-rank ops console: it drives a small
// simulated RMA world (a ring of ranks streaming puts at each other,
// optionally under injected faults) and renders each rank's health on a
// refresh loop — link state from the reliable-delivery relay, retry
// budget remaining, shard queue depths and steals, completion-queue
// occupancy and drops, and the top critical-path stages of the recorded
// timeline.
//
// Usage:
//
//	rmatop                      # 4 ranks, redraw twice a second, Ctrl-C to quit
//	rmatop -ranks 8 -shards 4   # sharded apply engine, more ranks
//	rmatop -faults              # inject the chaos drop burst: watch
//	                            # retransmissions eat the retry budget
//	rmatop -kill 2              # crash rank 2 mid-run: watch the live
//	                            # column go ALIVE→DEAD, the spare go
//	                            # SPARE→REBUILDING→ALIVE, and the ring
//	                            # re-target the successor
//	rmatop -frames 3 -plain     # finite, scroll-friendly run (CI smoke)
//
// The world is the same stack the benchmarks run — rmatop is a viewer,
// not a simulator of its own.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

func main() {
	ranks := flag.Int("ranks", 4, "world size")
	shards := flag.Int("shards", 0, "apply shards per target (0 = serial apply engine)")
	interval := flag.Duration("interval", 500*time.Millisecond, "refresh period")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = run until interrupted)")
	faults := flag.Bool("faults", false, "inject a seeded drop burst on link 1->0 plus background drops, with reliable delivery on")
	kill := flag.Int("kill", -1, "crash this compute rank mid-run: adds one spare, arms buddy replication, and the console shows detect -> rebuild -> re-target live")
	plain := flag.Bool("plain", false, "do not clear the screen between frames (scrollback-friendly)")
	diagDir := flag.String("diagdir", "", "flight-recorder postmortem directory (default: system temp dir)")
	flag.Parse()
	if *ranks < 2 {
		fmt.Fprintln(os.Stderr, "rmatop: need at least 2 ranks")
		os.Exit(2)
	}
	if *kill >= *ranks {
		fmt.Fprintf(os.Stderr, "rmatop: -kill %d is not a compute rank (world has %d)\n", *kill, *ranks)
		os.Exit(2)
	}

	cfg := runtime.Config{Ranks: *ranks, Seed: 42}
	if *faults {
		cfg.Faults = &simnet.FaultPlan{
			Seed:    4242,
			Default: simnet.LinkFaults{Drop: 0.05},
			Bursts: []simnet.Burst{{
				Link:   simnet.LinkKey{Src: 1, Dst: 0},
				Until:  vtime.Time(20 * time.Microsecond),
				Faults: simnet.LinkFaults{Drop: 1},
			}},
		}
	}
	if *kill >= 0 {
		// The kill lands well after exposure and descriptor exchange so
		// the ring is streaming when the rank goes dark; one spare stands
		// by for the rebuild.
		cfg.Spares = 1
		if cfg.Faults == nil {
			cfg.Faults = &simnet.FaultPlan{Seed: 4242}
		}
		cfg.Faults.RankKills = append(cfg.Faults.RankKills,
			simnet.RankKill{Rank: *kill, At: vtime.Time(150 * time.Microsecond)})
	}
	w := runtime.NewWorld(cfg)

	var stop atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *runtime.Proc) { workload(p, *shards, *diagDir, *kill, &stop) })
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	frame := 0
	for running := true; running; {
		select {
		case <-sig:
			running = false
		case <-ticker.C:
			frame++
			render(w, frame, *plain)
			if *frames > 0 && frame >= *frames {
				running = false
			}
		}
	}
	stop.Store(true)
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "rmatop: %v\n", err)
	}
	w.Close()
}

// workload is one rank's traffic generator: stream small puts around the
// ring (rank -> rank+1) with periodic Complete calls, so every subsystem
// rmatop renders — relay, shards, completion queue, critical path — has
// live traffic. With -kill the sessions also replicate, and a writer
// whose downstream neighbor dies awaits the rebuild and re-points the
// same descriptor at the successor spare. The real-time sleep paces the
// loop so the console stays responsive and the simulation does not spin
// a core per rank.
func workload(p *runtime.Proc, shards int, diagDir string, kill int, stop *atomic.Bool) {
	opts := []rma.SessionOption{
		rma.WithMetrics(),
		rma.WithTracing(4096),
		rma.WithEvents(256),
		rma.WithFlightRecorder(diagDir),
	}
	if shards > 1 {
		opts = append(opts, rma.WithApplyShards(shards))
	}
	if kill >= 0 {
		opts = append(opts, rma.WithReplication())
	}
	s := rma.Open(p, opts...)
	if p.IsSpare() {
		// Parked in the spare pool; after the rebuild the NIC agent serves
		// the redirected ring traffic, so this goroutine only has to stay
		// alive for the console to render its health.
		for !stop.Load() {
			time.Sleep(10 * time.Millisecond)
		}
		return
	}
	const slot = 64
	tms, local, err := s.ExposeCollective(slot * p.Comm().Size())
	if err != nil {
		return
	}
	next := (p.Rank() + 1) % p.Comm().Size()
	tm := tms[next]
	serving := next
	src := rma.Region{Offset: local.Offset + p.Rank()*slot, Size: slot}
	for !stop.Load() {
		var err error
		for j := 0; j < 8 && err == nil; j++ {
			_, err = s.Put(src, slot, rma.Byte, tm, p.Rank()*slot)
		}
		if err == nil {
			err = s.Complete(serving)
		}
		if err != nil {
			if kill >= 0 && serving == next && errors.Is(err, rma.ErrRankFailed) {
				// Downstream neighbor died: wait out the rebuild, then
				// stream the same descriptor at the successor.
				if spare, rerr := s.AwaitRebuilt(next); rerr == nil {
					tm.Owner = spare
					serving = spare
					continue
				}
			}
			if s.Err() != nil {
				// Sticky (a failed link, or this rank is the victim and its
				// own traffic black-holed): keep the rank alive so its
				// health stays observable, but stop issuing.
				for !stop.Load() {
					time.Sleep(10 * time.Millisecond)
				}
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// render draws one frame: a per-rank health table plus the current top
// critical-path stages of the merged timeline.
func render(w *runtime.World, frame int, plain bool) {
	var b strings.Builder
	if !plain {
		b.WriteString("\033[H\033[2J")
	}
	if spares := w.TotalRanks() - w.Size(); spares > 0 {
		fmt.Fprintf(&b, "rmatop — frame %d — %d ranks + %d spare\n\n", frame, w.Size(), spares)
	} else {
		fmt.Fprintf(&b, "rmatop — frame %d — %d ranks\n\n", frame, w.Size())
	}
	fmt.Fprintf(&b, "%-5s %-11s %-12s %-22s %-8s %-16s %-14s %s\n",
		"rank", "live", "vtime", "links(peer:state)", "budget", "shards(d/s/o)", "evq(d/c/drop)", "sticky")

	// Liveness is the membership service's view, one state per world rank
	// (spares included), shared by every engine.
	states := w.Members().States()
	perRank := make(map[int][]trace.Event)
	for r := 0; r < w.TotalRanks(); r++ {
		live := "-"
		if r < len(states) {
			live = states[r].String()
		}
		eng := core.Attached(w.Proc(r))
		if eng == nil {
			fmt.Fprintf(&b, "%-5d %-11s %s\n", r, live, "(attaching)")
			continue
		}
		h := eng.Health()
		links := "-"
		if len(h.Links) > 0 {
			parts := make([]string, 0, len(h.Links))
			for _, l := range h.Links {
				state := "up"
				if l.Down {
					state = "DOWN"
				} else if l.Attempts > 0 {
					state = fmt.Sprintf("retry%d", l.Attempts)
				}
				parts = append(parts, fmt.Sprintf("%d:%s", l.Peer, state))
			}
			links = strings.Join(parts, " ")
		}
		budget := "-"
		if h.RetryBudget > 0 {
			worst := 0
			for _, l := range h.Links {
				if l.Attempts > worst {
					worst = l.Attempts
				}
			}
			budget = fmt.Sprintf("%d/%d", h.RetryBudget-worst, h.RetryBudget)
		}
		shards := "-"
		if len(h.Shards) > 0 {
			var d, st, o int64
			for _, sh := range h.Shards {
				d += sh.Depth
				st += sh.Steals
				o += sh.Overflow
			}
			shards = fmt.Sprintf("%d/%d/%d", d, st, o)
		}
		evq := "-"
		if h.Queue != nil {
			evq = fmt.Sprintf("%d/%d/%d", h.Queue.Depth, h.Queue.Cap, h.Queue.Dropped)
		}
		sticky := ""
		if len(h.Sticky) > 0 {
			sticky = h.Sticky[0]
			if len(sticky) > 48 {
				sticky = sticky[:48] + "…"
			}
		}
		fmt.Fprintf(&b, "%-5d %-11s %-12d %-22s %-8s %-16s %-14s %s\n",
			r, live, h.VTime, links, budget, shards, evq, sticky)
		if ring := eng.Tracer(); ring != nil {
			perRank[r] = ring.Snapshot()
		}
	}

	rep := telemetry.AnalyzeCriticalPath(telemetry.Timeline(perRank))
	fmt.Fprintf(&b, "\ncritical path (%d spans, %d reconciled):", rep.Spans, rep.Reconciled)
	top := rep.TopStages(4)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Total > top[j].Total })
	for _, s := range top {
		share := 0.0
		if rep.TotalVTime > 0 {
			share = 100 * float64(s.Total) / float64(rep.TotalVTime)
		}
		fmt.Fprintf(&b, " %s %.0f%%", s.Stage, share)
	}
	b.WriteString("\n")
	os.Stdout.WriteString(b.String())
}
