// Command rmatop is the live per-rank ops console: it drives a small
// simulated RMA world (a ring of ranks streaming puts at each other,
// optionally under injected faults) and renders each rank's health on a
// refresh loop — link state from the reliable-delivery relay, retry
// budget remaining, shard queue depths and steals, completion-queue
// occupancy and drops, and the top critical-path stages of the recorded
// timeline.
//
// Usage:
//
//	rmatop                      # 4 ranks, redraw twice a second, Ctrl-C to quit
//	rmatop -ranks 8 -shards 4   # sharded apply engine, more ranks
//	rmatop -faults              # inject the chaos drop burst: watch
//	                            # retransmissions eat the retry budget
//	rmatop -frames 3 -plain     # finite, scroll-friendly run (CI smoke)
//
// The world is the same stack the benchmarks run — rmatop is a viewer,
// not a simulator of its own.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

func main() {
	ranks := flag.Int("ranks", 4, "world size")
	shards := flag.Int("shards", 0, "apply shards per target (0 = serial apply engine)")
	interval := flag.Duration("interval", 500*time.Millisecond, "refresh period")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = run until interrupted)")
	faults := flag.Bool("faults", false, "inject a seeded drop burst on link 1->0 plus background drops, with reliable delivery on")
	plain := flag.Bool("plain", false, "do not clear the screen between frames (scrollback-friendly)")
	diagDir := flag.String("diagdir", "", "flight-recorder postmortem directory (default: system temp dir)")
	flag.Parse()
	if *ranks < 2 {
		fmt.Fprintln(os.Stderr, "rmatop: need at least 2 ranks")
		os.Exit(2)
	}

	cfg := runtime.Config{Ranks: *ranks, Seed: 42}
	if *faults {
		cfg.Faults = &simnet.FaultPlan{
			Seed:    4242,
			Default: simnet.LinkFaults{Drop: 0.05},
			Bursts: []simnet.Burst{{
				Link:   simnet.LinkKey{Src: 1, Dst: 0},
				Until:  vtime.Time(20 * time.Microsecond),
				Faults: simnet.LinkFaults{Drop: 1},
			}},
		}
	}
	w := runtime.NewWorld(cfg)

	var stop atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *runtime.Proc) { workload(p, *shards, *diagDir, &stop) })
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	frame := 0
	for running := true; running; {
		select {
		case <-sig:
			running = false
		case <-ticker.C:
			frame++
			render(w, frame, *plain)
			if *frames > 0 && frame >= *frames {
				running = false
			}
		}
	}
	stop.Store(true)
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "rmatop: %v\n", err)
	}
	w.Close()
}

// workload is one rank's traffic generator: stream small puts around the
// ring (rank -> rank+1) with periodic Complete calls, so every subsystem
// rmatop renders — relay, shards, completion queue, critical path — has
// live traffic. The real-time sleep paces the loop so the console stays
// responsive and the simulation does not spin a core per rank.
func workload(p *runtime.Proc, shards int, diagDir string, stop *atomic.Bool) {
	opts := []rma.Option{
		rma.WithMetrics(),
		rma.WithTracing(4096),
		rma.WithEvents(256),
		rma.WithFlightRecorder(diagDir),
	}
	if shards > 1 {
		opts = append(opts, rma.WithApplyShards(shards))
	}
	s := rma.Open(p, opts...)
	const slot = 64
	tms, local, err := s.ExposeCollective(slot * p.Comm().Size())
	if err != nil {
		return
	}
	next := (p.Rank() + 1) % p.Comm().Size()
	src := rma.Region{Offset: local.Offset + p.Rank()*slot, Size: slot}
	for i := 0; !stop.Load(); i++ {
		for j := 0; j < 8; j++ {
			if _, err := s.Put(src, slot, rma.Byte, tms[next], p.Rank()*slot); err != nil {
				return
			}
		}
		if err := s.Complete(next); err != nil && s.Err() != nil {
			// The link failed sticky (fault runs): keep the rank alive so
			// its health stays observable, but stop issuing to it.
			for !stop.Load() {
				time.Sleep(10 * time.Millisecond)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// render draws one frame: a per-rank health table plus the current top
// critical-path stages of the merged timeline.
func render(w *runtime.World, frame int, plain bool) {
	var b strings.Builder
	if !plain {
		b.WriteString("\033[H\033[2J")
	}
	fmt.Fprintf(&b, "rmatop — frame %d — %d ranks\n\n", frame, w.Size())
	fmt.Fprintf(&b, "%-5s %-12s %-22s %-8s %-16s %-14s %s\n",
		"rank", "vtime", "links(peer:state)", "budget", "shards(d/s/o)", "evq(d/c/drop)", "sticky")

	perRank := make(map[int][]trace.Event)
	for r := 0; r < w.Size(); r++ {
		eng := core.Attached(w.Proc(r))
		if eng == nil {
			fmt.Fprintf(&b, "%-5d %s\n", r, "(attaching)")
			continue
		}
		h := eng.Health()
		links := "-"
		if len(h.Links) > 0 {
			parts := make([]string, 0, len(h.Links))
			for _, l := range h.Links {
				state := "up"
				if l.Down {
					state = "DOWN"
				} else if l.Attempts > 0 {
					state = fmt.Sprintf("retry%d", l.Attempts)
				}
				parts = append(parts, fmt.Sprintf("%d:%s", l.Peer, state))
			}
			links = strings.Join(parts, " ")
		}
		budget := "-"
		if h.RetryBudget > 0 {
			worst := 0
			for _, l := range h.Links {
				if l.Attempts > worst {
					worst = l.Attempts
				}
			}
			budget = fmt.Sprintf("%d/%d", h.RetryBudget-worst, h.RetryBudget)
		}
		shards := "-"
		if len(h.Shards) > 0 {
			var d, st, o int64
			for _, sh := range h.Shards {
				d += sh.Depth
				st += sh.Steals
				o += sh.Overflow
			}
			shards = fmt.Sprintf("%d/%d/%d", d, st, o)
		}
		evq := "-"
		if h.Queue != nil {
			evq = fmt.Sprintf("%d/%d/%d", h.Queue.Depth, h.Queue.Cap, h.Queue.Dropped)
		}
		sticky := ""
		if len(h.Sticky) > 0 {
			sticky = h.Sticky[0]
			if len(sticky) > 48 {
				sticky = sticky[:48] + "…"
			}
		}
		fmt.Fprintf(&b, "%-5d %-12d %-22s %-8s %-16s %-14s %s\n",
			r, h.VTime, links, budget, shards, evq, sticky)
		if ring := eng.Tracer(); ring != nil {
			perRank[r] = ring.Snapshot()
		}
	}

	rep := telemetry.AnalyzeCriticalPath(telemetry.Timeline(perRank))
	fmt.Fprintf(&b, "\ncritical path (%d spans, %d reconciled):", rep.Spans, rep.Reconciled)
	top := rep.TopStages(4)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Total > top[j].Total })
	for _, s := range top {
		share := 0.0
		if rep.TotalVTime > 0 {
			share = 100 * float64(s.Total) / float64(rep.TotalVTime)
		}
		fmt.Fprintf(&b, " %s %.0f%%", s.Stage, share)
	}
	b.WriteString("\n")
	os.Stdout.WriteString(b.String())
}
