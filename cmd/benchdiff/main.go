// Command benchdiff compares a freshly generated benchmark artifact
// (rmabench -exp <id> -json <file>) against its committed baseline
// (BENCH_<ID>.json) and gates CI on the result:
//
//   - hard failure (exit 1): modelled-time drift beyond tolerance,
//     vanished data points, or a FAIL self-check note — the LogGP model
//     is deterministic, so modelled drift means the protocol's cost
//     behaviour actually changed and the baseline must be either fixed
//     or consciously regenerated (make bench-baselines);
//   - warning (exit 0): wall-time and allocs/op drift — host- and
//     runtime-dependent, reported for trend-watching only.
//
// Usage:
//
//	benchdiff [-model-tol 0.05] baseline.json current.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mpi3rma/internal/bench"
)

func main() {
	modelTol := flag.Float64("model-tol", 0.05, "relative modelled-time drift tolerated before hard failure")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-model-tol f] baseline.json current.json")
		os.Exit(2)
	}
	baseline := readArtifact(flag.Arg(0))
	current := readArtifact(flag.Arg(1))

	rep := bench.CompareBenchJSON(baseline, current, bench.DiffOptions{ModelTol: *modelTol})
	for _, w := range rep.Warnings {
		fmt.Printf("warn: %s\n", w)
	}
	for _, f := range rep.Failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	if !rep.OK() {
		fmt.Printf("benchdiff: %s: %d failure(s) against %s\n", current.Experiment, len(rep.Failures), flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s: %d data points within %.0f%% modelled tolerance (%d warnings)\n",
		current.Experiment, len(baseline.Rows), 100**modelTol, len(rep.Warnings))
}

func readArtifact(path string) bench.BenchJSON {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	art, err := bench.ReadBenchJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	return art
}
