// Command rmalint is the static analyzer suite for this repository's RMA
// interfaces: it checks code using the rma facade, internal/core, and the
// MPI-2 comparison layer for one-sided correctness mistakes the type
// system cannot express.
//
// Usage:
//
//	rmalint [flags] [packages]
//
// Packages default to ./... (go-list patterns). Flags:
//
//	-only name[,name]  run only the named analyzers
//	-list              print the analyzers and exit
//	-json              emit the versioned findings report as JSON
//
// Findings print as path:line:col: message [analyzer]; -json emits the
// analysis.Report schema (version, analyzers run, findings, suppressed
// counts per analyzer). Exit codes: 0 when clean, 1 when findings were
// reported, 2 on a load or internal error. Suppress a finding at its use
// site with a //rmalint:ignore <analyzer> <reason> comment on the same
// line or the line above; the reason is mandatory and the analyzer name
// must be known (or "all").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpi3rma/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "rmalint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		os.Exit(2)
	}

	// The analyzers' own golden inputs (and any future fixtures) live in
	// testdata trees; go-list wildcards already skip them, but explicit
	// patterns should too.
	kept := pkgs[:0]
	for _, p := range pkgs {
		if strings.Contains(p.Path, "/testdata/") {
			continue
		}
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "rmalint: %s: %v (analyzing anyway)\n", p.Path, terr)
		}
		kept = append(kept, p)
	}

	res := analysis.Run(kept, analyzers)
	if *asJSON {
		if err := analysis.NewReport(analyzers, res).Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Printf("%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(s, "\n", "\n    ")
}
