// Command rmalint is the static analyzer suite for this repository's RMA
// interfaces: it checks code using the rma facade, internal/core, and the
// MPI-2 comparison layer for one-sided correctness mistakes the type
// system cannot express.
//
// Usage:
//
//	rmalint [flags] [packages]
//
// Packages default to ./... (go-list patterns). Flags:
//
//	-only name[,name]  run only the named analyzers
//	-list              print the analyzers and exit
//	-json              emit findings as JSON instead of text
//
// Findings print as path:line:col: message [analyzer]; the exit status is
// 1 when anything was reported. Suppress a finding at its use site with a
// //rmalint:ignore <analyzer> comment on the same line or the line above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpi3rma/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "rmalint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
		os.Exit(2)
	}

	// The analyzers' own golden inputs (and any future fixtures) live in
	// testdata trees; go-list wildcards already skip them, but explicit
	// patterns should too.
	kept := pkgs[:0]
	for _, p := range pkgs {
		if strings.Contains(p.Path, "/testdata/") {
			continue
		}
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "rmalint: %s: %v (analyzing anyway)\n", p.Path, terr)
		}
		kept = append(kept, p)
	}

	diags := analysis.Run(kept, analyzers)
	if *asJSON {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "rmalint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(s, "\n", "\n    ")
}
