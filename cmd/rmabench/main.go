// Command rmabench regenerates the paper's evaluation.
//
// Usage:
//
//	rmabench                 # run every experiment, print tables
//	rmabench -exp fig2       # one experiment
//	rmabench -exp fig2 -csv  # CSV to stdout (for plotting)
//	rmabench -list           # list experiment ids
//
// Experiment ids and what they reproduce are catalogued in DESIGN.md; the
// measured-vs-paper comparison lives in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpi3rma/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	plot := flag.Bool("plot", false, "append an ASCII summary plot per experiment")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}

	var results []bench.Result
	if *exp == "all" {
		results = bench.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			res, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "rmabench: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			results = append(results, res)
		}
	}
	for _, res := range results {
		if *csv {
			bench.WriteCSV(os.Stdout, res)
			continue
		}
		bench.WriteTable(os.Stdout, res)
		if *plot {
			bench.WritePlot(os.Stdout, res)
		}
	}
}
