// Command rmabench regenerates the paper's evaluation.
//
// Usage:
//
//	rmabench                 # run every experiment, print tables
//	rmabench -exp fig2       # one experiment
//	rmabench -exp fig2 -csv  # CSV to stdout (for plotting)
//	rmabench -exp e13 -metrics -trace e13-trace.json
//	                         # telemetry sidecars: metrics JSON on stdout,
//	                         # merged protocol timeline + spans to a file
//	rmabench -exp e14        # sharded target apply scaling (workers x
//	                         # payload on the Fig. 2 7-writer workload)
//	rmabench -chaos          # seeded fault-matrix chaos run (same as
//	                         # -exp chaos): byte-exact convergence under
//	                         # drops, duplicates, delays and corruption
//	rmabench -list           # list experiment ids
//
// Experiment ids and what they reproduce are catalogued in DESIGN.md; the
// measured-vs-paper comparison lives in EXPERIMENTS.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpi3rma/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	plot := flag.Bool("plot", false, "append an ASCII summary plot per experiment")
	metrics := flag.Bool("metrics", false, "collect telemetry and print each experiment's metrics snapshot as JSON")
	traceOut := flag.String("trace", "", "collect telemetry and write the merged trace timeline + spans JSON to this file")
	jsonOut := flag.String("json", "", "write the benchmark artifact (model+wall time, allocs) for a single -exp to this file (see cmd/benchdiff)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	chaos := flag.Bool("chaos", false, "run the seeded chaos fault matrix (shorthand for -exp chaos)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}
	if *chaos {
		*exp = "chaos"
	}
	if *metrics || *traceOut != "" {
		bench.SetTelemetry(true)
	}

	if *jsonOut != "" {
		writeBenchArtifact(*exp, *jsonOut)
		return
	}

	var results []bench.Result
	if *exp == "all" {
		results = bench.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			res, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "rmabench: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			results = append(results, res)
		}
	}
	for _, res := range results {
		if *csv {
			bench.WriteCSV(os.Stdout, res)
		} else {
			bench.WriteTable(os.Stdout, res)
			if *plot {
				bench.WritePlot(os.Stdout, res)
			}
		}
		if *metrics {
			emitMetrics(res)
		}
		if *traceOut != "" {
			writeTrace(res, *traceOut, len(results) > 1)
		}
	}
}

// writeBenchArtifact runs one experiment with allocation accounting and
// writes its benchmark artifact — the file cmd/benchdiff compares against
// the committed BENCH_<ID>.json baselines.
func writeBenchArtifact(exp, path string) {
	if exp == "all" || strings.Contains(exp, ",") {
		fmt.Fprintln(os.Stderr, "rmabench: -json needs a single -exp id (one artifact per experiment)")
		os.Exit(2)
	}
	res, allocs, ok := bench.ByNameWithAllocs(exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rmabench: unknown experiment %q (try -list)\n", exp)
		os.Exit(2)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: %v\n", err)
		os.Exit(1)
	}
	art := bench.BenchArtifact(res, allocs)
	if err := bench.WriteBenchJSON(f, art); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("benchmark artifact written to %s (%d rows, %d allocs)\n", path, len(art.Rows), art.TotalAllocs)
}

// emitMetrics prints one experiment's metrics snapshot as JSON, validating
// that the emitted bytes parse back (so a broken exporter fails the run,
// not a downstream pipeline).
func emitMetrics(res bench.Result) {
	var buf bytes.Buffer
	if err := res.WriteMetricsJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: metrics export for %s: %v\n", res.Name, err)
		os.Exit(1)
	}
	var check map[string]any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: metrics JSON for %s does not parse: %v\n", res.Name, err)
		os.Exit(1)
	}
	fmt.Printf("== %s metrics (JSON) ==\n", res.Name)
	os.Stdout.Write(buf.Bytes())
}

// writeTrace writes one experiment's trace sidecar. With several
// experiments in one invocation the experiment id is inserted before the
// file extension so the sidecars do not overwrite each other.
func writeTrace(res bench.Result, path string, multi bool) {
	if multi {
		if i := strings.LastIndex(path, "."); i > 0 {
			path = path[:i] + "-" + res.Name + path[i:]
		} else {
			path = path + "-" + res.Name
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTraceJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: trace export for %s: %v\n", res.Name, err)
		os.Exit(1)
	}
	var check map[string]any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: trace JSON for %s does not parse: %v\n", res.Name, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace sidecar written to %s (%d events, %d bytes)\n",
		path, traceEventCount(buf.Bytes()), buf.Len())
}

// traceEventCount reports how many events a trace sidecar carries (best
// effort, for the confirmation line).
func traceEventCount(b []byte) int {
	var dump struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		return 0
	}
	return len(dump.Events)
}
