// Command rmabench regenerates the paper's evaluation.
//
// Usage:
//
//	rmabench                 # run every experiment, print tables
//	rmabench -exp fig2       # one experiment
//	rmabench -exp fig2 -csv  # CSV to stdout (for plotting)
//	rmabench -exp e13 -metrics -trace e13-trace.json
//	                         # telemetry sidecars: metrics JSON on stdout,
//	                         # merged protocol timeline + spans to a file
//	rmabench -exp e13 -critpath e13-critpath.json
//	                         # critical-path sidecar: per-stage latency
//	                         # decomposition of the recorded timeline
//	rmabench -exp e13 -profile cpu,heap,mutex,block -profiledir /tmp
//	                         # labeled pprof sidecars alongside the run
//	rmabench -exp e14        # sharded target apply scaling (workers x
//	                         # payload on the Fig. 2 7-writer workload)
//	rmabench -chaos          # seeded fault-matrix chaos run (same as
//	                         # -exp chaos): byte-exact convergence under
//	                         # drops, duplicates, delays and corruption
//	rmabench -list           # list experiment ids
//
// Experiment ids and what they reproduce are catalogued in DESIGN.md; the
// measured-vs-paper comparison lives in EXPERIMENTS.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	gort "runtime"
	"runtime/pprof"
	"strings"

	"mpi3rma/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (see -list), or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	plot := flag.Bool("plot", false, "append an ASCII summary plot per experiment")
	metrics := flag.Bool("metrics", false, "collect telemetry and print each experiment's metrics snapshot as JSON")
	traceOut := flag.String("trace", "", "collect telemetry and write the merged trace timeline + spans JSON to this file")
	critOut := flag.String("critpath", "", "collect telemetry and write the critical-path stage breakdown JSON to this file")
	jsonOut := flag.String("json", "", "write the benchmark artifact (model+wall time, allocs) for a single -exp to this file (see cmd/benchdiff)")
	profile := flag.String("profile", "", "comma list of pprof profiles to capture across the run: cpu,heap,mutex,block (sidecar files, see -profiledir)")
	profileDir := flag.String("profiledir", ".", "directory receiving the pprof sidecar files")
	list := flag.Bool("list", false, "list experiment ids and exit")
	chaos := flag.Bool("chaos", false, "run the seeded chaos fault matrix (shorthand for -exp chaos)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}
	if *chaos {
		*exp = "chaos"
	}
	if *metrics || *traceOut != "" || *critOut != "" {
		bench.SetTelemetry(true)
	}
	if *profile != "" {
		stop := startProfiles(*profile, *profileDir)
		defer stop()
	}

	if *jsonOut != "" {
		writeBenchArtifact(*exp, *jsonOut)
		return
	}

	var results []bench.Result
	if *exp == "all" {
		results = bench.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			res, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "rmabench: unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			results = append(results, res)
		}
	}
	for _, res := range results {
		if *csv {
			bench.WriteCSV(os.Stdout, res)
		} else {
			bench.WriteTable(os.Stdout, res)
			if *plot {
				bench.WritePlot(os.Stdout, res)
			}
		}
		if *metrics {
			emitMetrics(res)
		}
		if *traceOut != "" {
			writeTrace(res, *traceOut, len(results) > 1)
		}
		if *critOut != "" {
			writeCritPath(res, *critOut, len(results) > 1)
		}
	}
}

// writeCritPath writes one experiment's critical-path sidecar: the
// per-stage latency decomposition of the recorded cross-rank timeline.
// Like the trace sidecar it is validated by re-parsing before it lands
// on disk, and with several experiments in one invocation the experiment
// id is inserted before the file extension.
func writeCritPath(res bench.Result, path string, multi bool) {
	if multi {
		if i := strings.LastIndex(path, "."); i > 0 {
			path = path[:i] + "-" + res.Name + path[i:]
		} else {
			path = path + "-" + res.Name
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCritPathJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: critical-path export for %s: %v\n", res.Name, err)
		os.Exit(1)
	}
	var check map[string]any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: critical-path JSON for %s does not parse: %v\n", res.Name, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: %v\n", err)
		os.Exit(1)
	}
	rep := res.CriticalPath()
	fmt.Printf("critical-path sidecar written to %s (%d spans, %d reconciled, %d mismatched)\n",
		path, rep.Spans, rep.Reconciled, rep.Mismatched)
}

// startProfiles begins the requested pprof captures and returns the stop
// function that writes the sidecar files. CPU samples stream for the
// whole run; heap/mutex/block are written at stop. The goroutine labels
// the runtime layers install (rank=N, role=nic-agent/shard-worker) make
// the captures attributable: go tool pprof -tagfocus rank=0 <file>.
func startProfiles(kinds, dir string) func() {
	var stops []func()
	create := func(name string) *os.File {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmabench: %v\n", err)
			os.Exit(1)
		}
		return f
	}
	note := func(f *os.File) {
		fmt.Fprintf(os.Stderr, "pprof sidecar written to %s\n", f.Name())
	}
	for _, kind := range strings.Split(kinds, ",") {
		switch strings.TrimSpace(kind) {
		case "cpu":
			f := create("rmabench-cpu.pprof")
			if err := pprof.StartCPUProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rmabench: cpu profile: %v\n", err)
				os.Exit(1)
			}
			stops = append(stops, func() {
				pprof.StopCPUProfile()
				f.Close()
				note(f)
			})
		case "heap":
			stops = append(stops, func() {
				f := create("rmabench-heap.pprof")
				gort.GC() // settle the heap so the profile reflects live data
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "rmabench: heap profile: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				note(f)
			})
		case "mutex":
			gort.SetMutexProfileFraction(5)
			stops = append(stops, func() {
				f := create("rmabench-mutex.pprof")
				if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
					fmt.Fprintf(os.Stderr, "rmabench: mutex profile: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				note(f)
			})
		case "block":
			gort.SetBlockProfileRate(1000)
			stops = append(stops, func() {
				f := create("rmabench-block.pprof")
				if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
					fmt.Fprintf(os.Stderr, "rmabench: block profile: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				note(f)
			})
		case "":
		default:
			fmt.Fprintf(os.Stderr, "rmabench: unknown -profile kind %q (want cpu,heap,mutex,block)\n", kind)
			os.Exit(2)
		}
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// writeBenchArtifact runs one experiment with allocation accounting and
// writes its benchmark artifact — the file cmd/benchdiff compares against
// the committed BENCH_<ID>.json baselines.
func writeBenchArtifact(exp, path string) {
	if exp == "all" || strings.Contains(exp, ",") {
		fmt.Fprintln(os.Stderr, "rmabench: -json needs a single -exp id (one artifact per experiment)")
		os.Exit(2)
	}
	res, allocs, ok := bench.ByNameWithAllocs(exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rmabench: unknown experiment %q (try -list)\n", exp)
		os.Exit(2)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: %v\n", err)
		os.Exit(1)
	}
	art := bench.BenchArtifact(res, allocs)
	if err := bench.WriteBenchJSON(f, art); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("benchmark artifact written to %s (%d rows, %d allocs)\n", path, len(art.Rows), art.TotalAllocs)
}

// emitMetrics prints one experiment's metrics snapshot as JSON, validating
// that the emitted bytes parse back (so a broken exporter fails the run,
// not a downstream pipeline).
func emitMetrics(res bench.Result) {
	var buf bytes.Buffer
	if err := res.WriteMetricsJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: metrics export for %s: %v\n", res.Name, err)
		os.Exit(1)
	}
	var check map[string]any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: metrics JSON for %s does not parse: %v\n", res.Name, err)
		os.Exit(1)
	}
	fmt.Printf("== %s metrics (JSON) ==\n", res.Name)
	os.Stdout.Write(buf.Bytes())
}

// writeTrace writes one experiment's trace sidecar. With several
// experiments in one invocation the experiment id is inserted before the
// file extension so the sidecars do not overwrite each other.
func writeTrace(res bench.Result, path string, multi bool) {
	if multi {
		if i := strings.LastIndex(path, "."); i > 0 {
			path = path[:i] + "-" + res.Name + path[i:]
		} else {
			path = path + "-" + res.Name
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTraceJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: trace export for %s: %v\n", res.Name, err)
		os.Exit(1)
	}
	var check map[string]any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: trace JSON for %s does not parse: %v\n", res.Name, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rmabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace sidecar written to %s (%d events, %d bytes)\n",
		path, traceEventCount(buf.Bytes()), buf.Len())
}

// traceEventCount reports how many events a trace sidecar carries (best
// effort, for the confirmation line).
func traceEventCount(b []byte) int {
	var dump struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(b, &dump); err != nil {
		return 0
	}
	return len(dump.Events)
}
