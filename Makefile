GO ?= go

.PHONY: check build vet test race smoke smoke-metrics bench

# check is the PR gate: vet, build, full tests, the race detector over the
# RMA engine and telemetry layer, a short E13 smoke bench proving batching
# still pays, and a telemetry smoke run proving the JSON exporters parse.
check: vet build test race smoke smoke-metrics

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/telemetry/... ./internal/trace/...

smoke:
	$(GO) test -run TestE13Smoke -count=1 ./internal/bench/

# smoke-metrics runs one telemetry-instrumented experiment end to end:
# rmabench validates the metrics and trace JSON re-parse before exiting 0.
smoke-metrics:
	$(GO) run ./cmd/rmabench -exp fig2 -metrics -trace /tmp/rmabench-fig2-trace.json > /dev/null

bench:
	$(GO) run ./cmd/rmabench
