GO ?= go

.PHONY: check build vet lint test race smoke smoke-metrics bench-smoke chaos bench

# check is the PR gate: vet, the rmalint static analyzers, build, full
# tests, the race detector over every package, a short E13 smoke bench
# proving batching still pays, an E14 smoke bench proving the sharded
# apply engine still scales, a telemetry smoke run proving the JSON
# exporters parse, and the seeded chaos fault matrix under the race
# detector.
check: lint build test race smoke smoke-metrics bench-smoke chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus the repo's own RMA static analyzers (lostrequest,
# epochorder, attrmisuse, boundscheck); see cmd/rmalint.
lint: vet
	$(GO) run ./cmd/rmalint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	$(GO) test -run TestE13Smoke -count=1 ./internal/bench/

# bench-smoke runs the E14 sharded-apply sweep at a single payload: slot
# contents must verify byte-exactly and model time must not regress as
# workers double.
bench-smoke:
	$(GO) test -run TestE14Smoke -count=1 ./internal/bench/

# smoke-metrics runs one telemetry-instrumented experiment end to end:
# rmabench validates the metrics and trace JSON re-parse before exiting 0.
smoke-metrics:
	$(GO) run ./cmd/rmabench -exp fig2 -metrics -trace /tmp/rmabench-fig2-trace.json > /dev/null

# chaos runs the seeded fault-matrix harness under the race detector:
# reliable delivery must converge byte-exactly with the fault-free run,
# retransmissions must actually happen, and an exhausted retry budget
# must surface ErrLinkFailed instead of hanging.
chaos:
	$(GO) test -race -count=1 -run 'FaultChaos|LinkFailed|ChaosSmoke|Relay|FacadeWithFaults|FacadeLinkFailure' ./internal/core/ ./internal/bench/ ./internal/portals/ ./rma/

bench:
	$(GO) run ./cmd/rmabench
