GO ?= go

.PHONY: check build vet lint lint-json test race smoke smoke-metrics bench-smoke chaos chaos-rankdeath bench bench-json bench-diff profile-smoke

# check is the PR gate: vet, the rmalint static analyzers, build, full
# tests, the race detector over every package, a short E13 smoke bench
# proving batching still pays, an E14 smoke bench proving the sharded
# apply engine still scales, a telemetry smoke run proving the JSON
# exporters parse, a profiling smoke run proving the critical-path and
# pprof sidecars come out attributable, and the seeded chaos fault
# matrix under the race detector.
check: lint build test race smoke smoke-metrics bench-smoke profile-smoke chaos chaos-rankdeath

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus the repo's own RMA static analyzers (lostrequest,
# epochorder, remoteconflict, lockorder, attrmisuse, boundscheck,
# deprecated); see cmd/rmalint.
lint: vet
	$(GO) run ./cmd/rmalint ./...

# lint-json emits the versioned machine-readable findings report (CI
# uploads it as an artifact so suppression counts stay auditable even on
# green runs). The time budget asserts the interprocedural tier stays
# cheap: one summary computation per package, shared by all analyzers.
LINT_BUDGET_SECONDS ?= 120
lint-json:
	@start=$$(date +%s); \
	$(GO) run ./cmd/rmalint -json ./... > rmalint-report.json; rc=$$?; \
	end=$$(date +%s); elapsed=$$((end - start)); \
	echo "rmalint -json: $${elapsed}s (budget $(LINT_BUDGET_SECONDS)s), exit $$rc"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECONDS) ]; then \
		echo "rmalint exceeded the $(LINT_BUDGET_SECONDS)s wall-clock budget" >&2; exit 1; \
	fi; \
	exit $$rc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	$(GO) test -run 'TestE13Smoke|TestE15Smoke|TestE16Smoke' -count=1 ./internal/bench/

# bench-smoke runs the E14 sharded-apply sweep at a single payload: slot
# contents must verify byte-exactly and model time must not regress as
# workers double.
bench-smoke:
	$(GO) test -run TestE14Smoke -count=1 ./internal/bench/

# smoke-metrics runs one telemetry-instrumented experiment end to end:
# rmabench validates the metrics and trace JSON re-parse before exiting 0.
smoke-metrics:
	$(GO) run ./cmd/rmabench -exp fig2 -metrics -trace /tmp/rmabench-fig2-trace.json > /dev/null

# profile-smoke exercises the diagnosis toolchain end to end: one
# experiment with every pprof sidecar plus the critical-path sidecar
# (rmabench validates the JSON and fails on any unreconciled span count
# mismatch at analysis level), and a short fault-injected rmatop run so
# the console's render path stays green.
profile-smoke:
	$(GO) run ./cmd/rmabench -exp fig2 -critpath /tmp/rmabench-fig2-critpath.json -profile cpu,heap,mutex,block -profiledir /tmp > /dev/null
	$(GO) run ./cmd/rmatop -frames 2 -plain -interval 100ms -faults > /dev/null

# chaos runs the seeded fault-matrix harness under the race detector:
# reliable delivery must converge byte-exactly with the fault-free run,
# retransmissions must actually happen, and an exhausted retry budget
# must surface ErrLinkFailed instead of hanging.
chaos:
	$(GO) test -race -count=1 -run 'FaultChaos|EventChaos|LinkFailed|ChaosSmoke|Relay|FacadeWithFaults|FacadeLinkFailure' ./internal/core/ ./internal/bench/ ./internal/portals/ ./rma/

# chaos-rankdeath kills a replicated rank mid-run under the same seeded
# fault matrix: the buddy must promote its replicas onto a spare, origins
# targeting the dead rank must get ErrRankFailed (never ErrLinkFailed) in
# bounded time, ops to survivors must keep completing, and the rebuilt
# regions must converge byte-exactly with the fault-free run.
chaos-rankdeath:
	$(GO) test -race -count=1 -run 'RankDeath|RankKill|Replication|Membership|Spare|Postmortem' ./internal/core/ ./internal/simnet/ ./internal/runtime/ ./rma/

bench:
	$(GO) run ./cmd/rmabench

# bench-json regenerates the committed benchmark baselines (one artifact
# per tracked experiment: model + wall time and allocs/op). Run it — and
# review the diff — whenever a change intentionally moves modelled cost.
bench-json:
	$(GO) run ./cmd/rmabench -exp e13 -json BENCH_E13.json
	$(GO) run ./cmd/rmabench -exp e14 -json BENCH_E14.json
	$(GO) run ./cmd/rmabench -exp e15 -json BENCH_E15.json
	$(GO) run ./cmd/rmabench -exp e16 -json BENCH_E16.json

# bench-diff regenerates fresh artifacts into /tmp and gates them against
# the committed baselines: modelled-time drift beyond 5% hard-fails, wall
# time and allocs/op drift only warn (host noise). E16 gets a wider gate:
# which rank wins a contended bucket claim depends on host scheduling, so
# its retry counts — and with them modelled time — wobble run to run.
bench-diff:
	$(GO) run ./cmd/rmabench -exp e13 -json /tmp/rmabench-e13.json > /dev/null
	$(GO) run ./cmd/rmabench -exp e14 -json /tmp/rmabench-e14.json > /dev/null
	$(GO) run ./cmd/rmabench -exp e15 -json /tmp/rmabench-e15.json > /dev/null
	$(GO) run ./cmd/rmabench -exp e16 -json /tmp/rmabench-e16.json > /dev/null
	$(GO) run ./cmd/benchdiff BENCH_E13.json /tmp/rmabench-e13.json
	$(GO) run ./cmd/benchdiff BENCH_E14.json /tmp/rmabench-e14.json
	$(GO) run ./cmd/benchdiff BENCH_E15.json /tmp/rmabench-e15.json
	$(GO) run ./cmd/benchdiff -model-tol 0.25 BENCH_E16.json /tmp/rmabench-e16.json
