GO ?= go

.PHONY: check build vet test race smoke bench

# check is the PR gate: vet, build, full tests, the race detector over the
# RMA engine, and a short E13 smoke bench proving batching still pays.
check: vet build test race smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

smoke:
	$(GO) test -run TestE13Smoke -count=1 ./internal/bench/

bench:
	$(GO) run ./cmd/rmabench
