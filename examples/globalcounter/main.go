// Global counter: dynamic load balancing with the strawman's RMW
// extension (paper Section V: conditional and unconditional
// read-modify-write operations "are being discussed in the MPI forum as a
// part of this strawman proposal").
//
// This is the Global Arrays / NWChem idiom the paper's Section II points
// at: a shared task counter lives in rank 0's memory; workers grab task
// ids with FetchAdd (the unconditional RMW) until the pool is drained,
// and the run's "result" per task is accumulated back into a shared
// result vector with atomic accumulates. A CompareSwap elects a winner to
// print the report, demonstrating the conditional RMW.
//
// Run with:
//
//	go run ./examples/globalcounter
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

const (
	ranks = 6
	tasks = 100
)

func main() {
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		rma := core.Attach(p, core.Options{})
		comm := p.Comm()
		me := p.Rank()

		// Rank 0 owns the counter (8B), a per-rank work tally
		// (ranks x 8B), and the election flag (8B).
		var tm core.TargetMem
		if me == 0 {
			tm, _ = rma.ExposeNew(8 + ranks*8 + 8)
			enc := tm.Encode()
			for r := 1; r < ranks; r++ {
				p.Send(r, 0, enc)
			}
		} else {
			enc, _ := p.Recv(0, 0)
			var err error
			tm, err = core.DecodeTargetMem(enc)
			if err != nil {
				log.Fatal(err)
			}
		}
		const (
			offCounter = 0
			offTally   = 8
			offElect   = 8 + ranks*8
		)

		// Everyone (including rank 0) works the task pool.
		grabbed := 0
		for {
			id, err := rma.FetchAdd(tm, offCounter, 1, 0, comm, core.AttrNone)
			if err != nil {
				log.Fatal(err)
			}
			if id >= tasks {
				break
			}
			grabbed++
			// "Process" task id: a sliver of real work so the Go scheduler
			// interleaves the workers, plus virtual compute time (heavier
			// for some ids) so the modelled balance is interesting.
			time.Sleep(50 * time.Microsecond)
			p.Advance(time.Duration(1000 * (1 + id%7)))
		}

		// Tally our work into the shared vector with an atomic accumulate.
		src := p.Alloc(8)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(grabbed))
		p.WriteLocal(src, 0, b[:])
		if _, err := rma.Accumulate(core.AccSum, src, 1, datatype.Int64,
			tm, offTally+me*8, 1, datatype.Int64,
			0, comm, core.AttrAtomic|core.AttrBlocking); err != nil {
			log.Fatal(err)
		}
		if err := rma.CompleteCollective(comm); err != nil {
			log.Fatal(err)
		}

		// Conditional RMW: first rank to swap 0->rank+1 wins reporting.
		old, err := rma.CompareSwap(tm, offElect, 0, int64(me+1), 0, comm, core.AttrNone)
		if err != nil {
			log.Fatal(err)
		}
		if old == 0 {
			fmt.Printf("rank %d won the CAS election\n", me)
		}
		comm.Barrier()
		if me == 0 {
			// Rank 0 can read its own memory directly.
			fmt.Printf("global counter drained %d tasks across %d ranks\n", tasks, ranks)
			sum := int64(0)
			for r := 0; r < ranks; r++ {
				v := int64(binary.LittleEndian.Uint64(p.Mem().Snapshot(offTally+r*8, 8)))
				fmt.Printf("  rank %d grabbed %d tasks\n", r, v)
				sum += v
			}
			fmt.Printf("  total %d (expected %d)\n", sum, tasks)
		}
		comm.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
