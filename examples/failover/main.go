// Failover: survive a rank death with buddy replication and a spare.
//
// Four simulated processes start: three compute ranks and one spare.
// Every compute rank exposes an 8-byte slot and mirrors it to a buddy —
// rank (r+1) mod 3 — because the session is opened with
// rma.WithReplication(). The fault plan crash-injects rank 1 mid-run:
// from the kill instant the simulated wire blackholes every frame to or
// from it, exactly as a died process looks to the network.
//
// Rank 0 hammers versioned writes into rank 1's slot until the failure
// detector declares the rank dead and the put fails with a wrapped
// rma.ErrRankFailed (never rma.ErrLinkFailed — a dead peer is not a
// flaky link). It then waits for the recovery to finish: rank 1's buddy
// (rank 2) replays its replica onto the spare, which re-exposes the
// memory at the original handle. AwaitRebuilt names the successor, the
// descriptor is retargeted by owner only, and a read-back shows the
// last completed write survived the crash byte for byte.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"time"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

func main() {
	const (
		ranks  = 3
		victim = 1
		slot   = 8
	)
	// Crash rank 1 once the workload is in full swing. The plan is part
	// of the world's configuration, so the run is deterministic: same
	// seed, same kill, same recovery.
	plan := &rma.FaultPlan{
		Seed:      7,
		RankKills: []rma.RankKill{{Rank: victim, At: vtime.Time(50 * time.Microsecond)}},
	}
	world := runtime.NewWorld(runtime.Config{Ranks: ranks, Spares: 1, Seed: 7, Faults: plan})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithReplication())

		if p.IsSpare() {
			// The spare's NIC agent does all the work: it parks until the
			// promoting buddy replays the dead rank's regions onto it.
			return
		}

		// Every compute rank exposes one slot; replication mirrors it to
		// the buddy transparently from here on.
		tm, _ := s.Expose(slot)

		if p.Rank() == victim {
			// Ship the descriptor, then serve puts from the NIC agent
			// until the crash. The process function has nothing left to
			// do — dying is handled by the fault plan.
			p.Send(0, 0, tm.Encode())
			return
		}
		if p.Rank() != 0 {
			// The buddy also serves passively; promotion runs on its NIC
			// agent when the detector declares the victim dead.
			return
		}

		enc, _ := p.Recv(victim, 0)
		vtm, err := rma.DecodeTargetMem(enc)
		if err != nil {
			log.Fatal(err)
		}

		// Hammer versioned writes into the victim until the death
		// surfaces. Each round only counts once Complete returns: by
		// then the write is applied AND its replica is acknowledged by
		// the buddy, so every completed round is crash-durable.
		src := p.Alloc(slot)
		round := 0
		var failed error
		for failed == nil {
			round++
			p.WriteLocal(src, 0, bytes.Repeat([]byte{byte(round)}, slot))
			if _, err := s.Put(src, slot, rma.Byte, vtm, 0); err != nil {
				failed = err
				break
			}
			failed = s.Complete(vtm.Owner)
		}
		if !errors.Is(failed, rma.ErrRankFailed) {
			log.Fatalf("death surfaced as %v, want wrapped rma.ErrRankFailed", failed)
		}
		lastGood := round - 1 // the failed round never completed
		fmt.Printf("rank 0: rank %d died during round %d: %v\n", victim, round, failed)

		// Recovery: the buddy promotes its replica onto the spare, which
		// re-exposes the memory at the original handle. Only the owner
		// in the descriptor changes.
		succ, err := s.AwaitRebuilt(victim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rank 0: spare %d rebuilt rank %d's memory\n", succ, victim)

		vtm.Owner = succ
		got := p.Alloc(slot)
		if _, err := s.Get(got, slot, rma.Byte, vtm, 0, rma.WithBlocking()); err != nil {
			log.Fatal(err)
		}
		// Completed rounds are durable; the round whose Complete failed is
		// indeterminate (its write may or may not have reached the buddy
		// before the crash). Either way the slot must hold one whole
		// round, never torn bytes.
		have := p.ReadLocal(got, 0, slot)
		if !bytes.Equal(have, bytes.Repeat([]byte{byte(lastGood)}, slot)) &&
			!bytes.Equal(have, bytes.Repeat([]byte{byte(round)}, slot)) {
			log.Fatalf("spare serves %v, want round %d or %d bytes", have, lastGood, round)
		}
		fmt.Printf("rank 0: spare serves round %d bytes intact: %v\n", have[0], have)

		// The session keeps working against live peers and the spare;
		// only the dead rank stays sticky.
		p.WriteLocal(src, 0, bytes.Repeat([]byte{0xAA}, slot))
		if _, err := s.Put(src, slot, rma.Byte, vtm, 0); err != nil {
			log.Fatal(err)
		}
		if err := s.Complete(succ); err != nil {
			log.Fatal(err)
		}
		fmt.Println("rank 0: writes to the successor complete normally")
	})
	if err != nil {
		log.Fatal(err)
	}
}
