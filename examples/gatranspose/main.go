// Distributed matrix transpose over the ARMCI-like layer — the Global
// Arrays workload family the paper cites as the motivation for
// library-based RMA (Section II: "Library-based RMA approaches, such as
// SHMEM and Global Arrays, have been used by a number of important
// applications").
//
// An N×N float64 matrix is row-block distributed across the ranks through
// ARMCI_Malloc. Each rank then assembles its block of the transpose by
// issuing one *strided get* per (destination row, owner): the column of A
// living at the owner becomes a contiguous run of the destination row.
// Strided transfers are exactly what ARMCI offers beyond GASNet and what
// the strawman absorbs into datatypes (paper Section VI).
//
// Run with:
//
//	go run ./examples/gatranspose
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"mpi3rma/internal/armci"
	"mpi3rma/internal/runtime"
)

const (
	ranks = 4
	n     = 32 // matrix dimension; rowsPer = n/ranks rows per rank
)

func main() {
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		ac := armci.Attach(p)
		comm := p.Comm()
		me := p.Rank()
		rowsPer := n / ranks

		// A's block and At's block, both rowsPer x n, collectively
		// allocated so every rank can address every other rank's block.
		blockBytes := rowsPer * n * 8
		aTMs, aRegion, err := ac.Malloc(comm, blockBytes)
		if err != nil {
			log.Fatal(err)
		}
		_, atRegion, err := ac.Malloc(comm, blockBytes)
		if err != nil {
			log.Fatal(err)
		}

		// Fill my rows of A: A[i][j] = i*n + j (global indices).
		buf := make([]byte, blockBytes)
		for li := 0; li < rowsPer; li++ {
			gi := me*rowsPer + li
			for j := 0; j < n; j++ {
				v := float64(gi*n + j)
				binary.LittleEndian.PutUint64(buf[(li*n+j)*8:], math.Float64bits(v))
			}
		}
		p.WriteLocal(aRegion, 0, buf)
		ac.Barrier(comm)

		// Assemble my block of At: row gi of At is column gi of A.
		// Column gi at owner r is rowsPer elements with stride n*8 —
		// one strided get per (destination row, owner).
		for li := 0; li < rowsPer; li++ {
			gi := me*rowsPer + li
			for owner := 0; owner < ranks; owner++ {
				err := ac.GetS(
					atRegion,
					armci.StridedSpec{Off: (li*n + owner*rowsPer) * 8, Strides: []int{8}},
					aTMs[owner],
					armci.StridedSpec{Off: gi * 8, Strides: []int{n * 8}},
					8, []int{rowsPer}, owner, comm)
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		ac.Barrier(comm)

		// Verify: At[i][j] must equal A[j][i] = j*n + i.
		got := p.ReadLocal(atRegion, 0, blockBytes)
		bad := 0
		var checksum float64
		for li := 0; li < rowsPer; li++ {
			gi := me*rowsPer + li
			for j := 0; j < n; j++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(got[(li*n+j)*8:]))
				checksum += v
				if v != float64(j*n+gi) {
					bad++
				}
			}
		}
		total := comm.AllreduceInt64(runtime.OpSum, int64(checksum))
		wrong := comm.AllreduceInt64(runtime.OpSum, int64(bad))
		if me == 0 {
			want := int64(n * n * (n*n - 1) / 2) // sum of 0..n²-1
			fmt.Printf("transpose of %dx%d over %d ranks: %d wrong elements\n", n, n, ranks, wrong)
			fmt.Printf("checksum %d (want %d)\n", total, want)
			fmt.Printf("strided gets issued: %d; virtual time %v\n", ranks*rowsPer*ranks, p.Now())
			if wrong != 0 || total != want {
				log.Fatal("transpose verification failed")
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
