// Quickstart: the strawman MPI-3 RMA API in its smallest useful form.
//
// Four simulated ranks start. Rank 0 exposes a buffer as a target_mem
// object (no collective window creation — requirement 1 of the paper) and
// passes the descriptor to the others, which is the user's job in the
// strawman model. Every other rank then writes its rank number into its
// slot with a single-call blocking put, issues RMA_complete toward rank 0,
// and finally rank 0 prints what its memory holds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func main() {
	const ranks = 4
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p)

		if p.Rank() == 0 {
			// Expose one byte per rank. Nothing collective happens here.
			tm, region := s.Expose(ranks)
			enc := tm.Encode()
			for r := 1; r < ranks; r++ {
				p.Send(r, 0, enc)
			}
			// Wait until every rank's operations are complete everywhere.
			if err := s.CompleteCollective(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rank 0 memory after puts: %v\n", p.Mem().Snapshot(region.Offset, ranks))
			return
		}

		// Receive the descriptor rank 0 shipped us.
		enc, _ := p.Recv(0, 0)
		tm, err := rma.DecodeTargetMem(enc)
		if err != nil {
			log.Fatal(err)
		}

		// One blocking put: origin buffer, one byte, into our slot.
		src := p.Alloc(1)
		p.WriteLocal(src, 0, []byte{byte(p.Rank())})
		if _, err := s.Put(src, 1, rma.Byte, tm, p.Rank(), rma.WithBlocking()); err != nil {
			log.Fatal(err)
		}

		// RMA_complete toward rank 0: all our puts are now applied there.
		// Complete is variadic — s.Complete() with no arguments would cover
		// every rank at once.
		if err := s.Complete(tm.Owner); err != nil {
			log.Fatal(err)
		}
		if err := s.CompleteCollective(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rank %d: put done at virtual time %v\n", p.Rank(), p.Now())
	})
	if err != nil {
		log.Fatal(err)
	}
}
