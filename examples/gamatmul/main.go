// Blocked matrix multiply on Global Arrays — the classic GA demonstration
// (the paper's Section II names Global Arrays as a driving consumer of
// RMA, and NWChem-style codes compute exactly like this: owners of C
// pull the A and B patches they need with one-sided gets, multiply
// locally, and accumulate partial results into C).
//
// C = A × B with A, B, C as n×n ga.Arrays distributed by row blocks.
// Each rank computes the C rows it owns: for its row band it gets A's
// band once, then for each column band of B gets the needed patch and
// accumulates the partial product into C — no receives, no barriers
// inside the compute loop, one Sync at the end.
//
// Run with:
//
//	go run ./examples/gamatmul
package main

import (
	"fmt"
	"log"
	"math"

	"mpi3rma/internal/ga"
	"mpi3rma/internal/runtime"
)

const (
	ranks = 4
	n     = 24 // matrix dimension
)

func main() {
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		tk := ga.Attach(p)
		comm := p.Comm()

		A, err := tk.Create(comm, n, n)
		if err != nil {
			log.Fatal(err)
		}
		B, err := tk.Create(comm, n, n)
		if err != nil {
			log.Fatal(err)
		}
		C, err := tk.Create(comm, n, n)
		if err != nil {
			log.Fatal(err)
		}

		// Initialize A[i][j] = i+1 if i==j (diagonal), B[i][j] = j+1 if
		// i==j: then C should be the diagonal matrix (i+1)².
		lo, hi := A.MyRows()
		if hi > lo {
			band := make([]float64, (hi-lo)*n)
			for i := lo; i < hi; i++ {
				band[(i-lo)*n+i] = float64(i + 1)
			}
			if err := A.Put(lo, 0, hi-lo, n, band); err != nil {
				log.Fatal(err)
			}
			if err := B.Put(lo, 0, hi-lo, n, band); err != nil {
				log.Fatal(err)
			}
		}
		C.Fill(0)
		A.Sync()
		B.Sync()
		C.Sync()

		// Compute my C rows: C[lo:hi, :] = A[lo:hi, :] x B.
		if hi > lo {
			rows := hi - lo
			aBand := make([]float64, rows*n)
			if err := A.Get(lo, 0, rows, n, aBand); err != nil {
				log.Fatal(err)
			}
			// Pull B in row bands (as its owners hold them) and
			// accumulate partial products.
			partial := make([]float64, rows*n)
			bBand := make([]float64, n) // one row of B at a time
			for k := 0; k < n; k++ {
				if err := B.Get(k, 0, 1, n, bBand); err != nil {
					log.Fatal(err)
				}
				for i := 0; i < rows; i++ {
					aik := aBand[i*n+k]
					if aik == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						partial[i*n+j] += aik * bBand[j]
					}
				}
			}
			if err := C.Acc(lo, 0, rows, n, 1.0, partial); err != nil {
				log.Fatal(err)
			}
		}
		C.Sync()

		// Verify on rank 0: C[i][i] == (i+1)², off-diagonal zero.
		if p.Rank() == 0 {
			got := make([]float64, n*n)
			if err := C.Get(0, 0, n, n, got); err != nil {
				log.Fatal(err)
			}
			var maxErr float64
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := 0.0
					if i == j {
						want = float64((i + 1) * (i + 1))
					}
					if d := math.Abs(got[i*n+j] - want); d > maxErr {
						maxErr = d
					}
				}
			}
			fmt.Printf("C = A x B on %d ranks (%dx%d): max |error| = %g\n", ranks, n, n, maxErr)
			fmt.Printf("sample diagonal: C[0][0]=%g C[%d][%d]=%g\n", got[0], n-1, n-1, got[(n-1)*n+n-1])
			fmt.Printf("virtual time: %v\n", p.Now())
			if maxErr != 0 {
				log.Fatal("matmul verification failed")
			}
		}
		C.Sync()
	})
	if err != nil {
		log.Fatal(err)
	}
}
