// The non-cache-coherent hazard, live — Section III-B2 of the paper:
//
//	"Since data in cache may have been invalidated by a write by another
//	processor ... it may be necessary to clear the cache or to circumvent
//	the cache by reading directly from memory. ... For RMA, this implies
//	that involvement of the target is needed."
//
// Rank 0 runs with an NEC-SX-style non-coherent write-through scalar
// cache. It primes its cache by reading its exposed buffer, rank 1 then
// RMA-puts new data into it, and rank 0 reads again: the scalar cache
// serves the STALE value. Only after an explicit memory fence does the
// new data appear — target-side involvement the coherent machine never
// needs, demonstrated side by side.
//
// Run with:
//
//	go run ./examples/noncoherent
package main

import (
	"fmt"
	"log"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

func run(coherent bool) {
	label := "non-coherent (NEC SX-like)"
	coh := memsim.NonCoherentWriteThrough
	if coherent {
		label = "cache-coherent (Cray XT-like)"
		coh = memsim.Coherent
	}
	world := runtime.NewWorld(runtime.Config{
		Ranks: 2,
		Coherence: func(rank int) memsim.Coherence {
			if rank == 0 {
				return coh
			}
			return memsim.Coherent
		},
	})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		rma := core.Attach(p, core.Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := rma.ExposeNew(64)
			p.WriteLocal(region, 0, []byte{11})
			// Prime the scalar cache.
			before := p.ReadLocal(region, 0, 1)[0]
			p.Send(1, 0, tm.Encode())
			p.Recv(1, 1) // rank 1 finished its put + complete

			stale := p.ReadLocal(region, 0, 1)[0]
			lines := p.Mem().Fence()
			fresh := p.ReadLocal(region, 0, 1)[0]

			fmt.Printf("%s target:\n", label)
			fmt.Printf("  before put: %d\n", before)
			fmt.Printf("  after put, before fence: %d  (stale reads counted: %d)\n",
				stale, p.Mem().StaleReads.Value())
			fmt.Printf("  after fence (%d lines invalidated): %d\n\n", lines, fresh)
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := core.DecodeTargetMem(enc)
		if err != nil {
			log.Fatal(err)
		}
		src := p.Alloc(1)
		p.WriteLocal(src, 0, []byte{42})
		if _, err := rma.Put(src, 1, datatype.Byte, tm, 0, 1, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
			log.Fatal(err)
		}
		if err := rma.Complete(comm, 0); err != nil {
			log.Fatal(err)
		}
		p.Send(0, 1, nil)
	})
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	run(true)
	run(false)
}
