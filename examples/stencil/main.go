// Stencil: a 1-D Jacobi iteration with RMA halo exchange — the PGAS-style
// workload the paper's introduction motivates (Section II: PGAS languages
// and libraries rely on efficient RMA for exactly this pattern).
//
// The global domain of N float64 cells is block-distributed over the
// ranks. The example runs the sweep loop twice and compares the two runs:
//
//   - Blocking: every sweep pushes the boundary cells into the neighbours'
//     ghost slots, waits for remote completion, barriers, and only then
//     relaxes — communication and compute strictly alternate.
//
//   - Pipelined: each side has TWO ghost slots, indexed by sweep parity.
//     A sweep pushes its boundary values into the neighbours' next-parity
//     slots, relaxes the interior cells (which need no ghosts) while the
//     halos fly, then Selects on the neighbour's delivery counter
//     (OnApplied, threshold sweep+1) and finishes the two edge cells. No
//     per-sweep barrier, no blocking Complete — the event surface
//     overlaps all halo latency with interior compute. The parity slots
//     make the run-ahead safe by data dependency alone: a neighbour can
//     only overwrite a slot after it received this rank's next boundary,
//     which is only pushed after this rank has read that slot.
//
// Both runs produce byte-identical cells (the example checks), and the
// pipelined run finishes earlier in virtual time — the overlap the
// paper's asynchronous one-sided interface exists to expose.
//
// Run with:
//
//	go run ./examples/stencil
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

const (
	ranks   = 4
	perRank = 64  // cells per rank
	sweeps  = 200 // Jacobi iterations
)

// result is one run's observable outcome: the full domain gathered at
// rank 0, and the latest virtual finish time across ranks.
type result struct {
	cells  []byte
	finish int64
}

func main() {
	blocking := runStencil(false)
	pipelined := runStencil(true)

	fmt.Printf("stencil: %d ranks x %d cells, %d sweeps\n", ranks, perRank, sweeps)
	fmt.Printf("blocking  finish: %d ns modelled\n", blocking.finish)
	fmt.Printf("pipelined finish: %d ns modelled\n", pipelined.finish)
	if pipelined.finish < blocking.finish {
		gain := float64(blocking.finish-pipelined.finish) / float64(blocking.finish)
		fmt.Printf("overlap won %.1f%% of the modelled run\n", 100*gain)
	}
	if bytes.Equal(blocking.cells, pipelined.cells) {
		fmt.Println("pipelined cells byte-identical to blocking: ok")
	} else {
		log.Fatal("pipelined run diverged from blocking bytes")
	}
	edge := make([]float64, 8)
	for i := range edge {
		edge[i] = math.Float64frombits(binary.LittleEndian.Uint64(pipelined.cells[i*8:]))
	}
	fmt.Printf("left-edge temperatures: ")
	for _, v := range edge {
		fmt.Printf("%.2f ", v)
	}
	fmt.Println()
}

func runStencil(pipelined bool) result {
	// Layout per rank: two ghost slots per side when pipelined (parity-
	// indexed), one otherwise, around perRank interior cells.
	ghosts := 1
	if pipelined {
		ghosts = 2
	}
	first := ghosts              // first owned cell
	last := ghosts + perRank - 1 // last owned cell
	total := perRank + 2*ghosts

	var res result
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithEvents(64))
		comm := p.Comm()
		me := p.Rank()

		tms, region, err := s.ExposeCollective(total * 8)
		if err != nil {
			log.Fatal(err)
		}

		set := func(idx int, v float64) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			p.WriteLocal(region, idx*8, b[:])
		}
		get := func(idx int) float64 {
			b := p.ReadLocal(region, idx*8, 8)
			return math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
		for i := 0; i < total; i++ {
			set(i, 0)
		}
		// Fixed Dirichlet boundary at the global left edge: every left
		// ghost slot of rank 0 permanently holds 100.
		if me == 0 {
			for g := 0; g < ghosts; g++ {
				set(g, 100)
			}
		}

		left, right := me-1, me+1
		var neighbors []int
		if left >= 0 {
			neighbors = append(neighbors, left)
		}
		if right < ranks {
			neighbors = append(neighbors, right)
		}

		scratch := p.Alloc(8)
		// push sends one boundary value into a neighbour's ghost slot. The
		// pipelined variant keeps two pushes to the same neighbour in
		// flight and waits on delivery *counts*, so its pushes carry the
		// Ordering attribute: count k means the first k pushes applied,
		// not any k of them. Blocking never overlaps two, so it skips it.
		var pushOpts []rma.OpOption
		if pipelined {
			pushOpts = []rma.OpOption{rma.WithOrdering()}
		}
		push := func(v float64, neighbor, ghostIdx int) *rma.Request {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			p.WriteLocal(scratch, 0, b[:])
			req, err := s.PutNotify(scratch, 1, rma.Float64, tms[neighbor], ghostIdx*8, pushOpts...)
			if err != nil {
				log.Fatal(err)
			}
			return req
		}

		old := make([]float64, total)
		snap := func() {
			for i := 0; i < total; i++ {
				old[i] = get(i)
			}
		}

		if !pipelined {
			// Blocking variant: push, complete, barrier, relax — the
			// strictly alternating shape.
			for sweep := 0; sweep < sweeps; sweep++ {
				var reqs []*rma.Request
				if left >= 0 {
					reqs = append(reqs, push(get(first), left, total-1))
				}
				if right < ranks {
					reqs = append(reqs, push(get(last), right, 0))
				}
				for _, req := range reqs {
					if err := req.Await(); err != nil {
						log.Fatal(err)
					}
				}
				if err := s.Complete(neighbors...); err != nil {
					log.Fatal(err)
				}
				comm.Barrier()
				snap()
				lo, hi := first, last
				if me == ranks-1 {
					hi--
				}
				for i := lo; i <= hi; i++ {
					set(i, 0.5*(old[i-1]+old[i+1]))
				}
				if me == 0 {
					set(0, 100)
				}
				comm.Barrier()
			}
		} else {
			// Pipelined variant. Ghost slots by parity: left side at
			// {0, 1}, right side at {total-2, total-1}; parity q uses
			// left slot q and right slot total-2+q. Sweep k reads parity
			// k%2 and pushes the values it computes into parity (k+1)%2.
			//
			// Seed: parity-0 ghosts must hold the neighbours' initial
			// boundary (all zeros here, but push them anyway so the
			// delivery counters align: after sweep k each neighbour has
			// applied k+1 of this rank's puts).
			// Every in-flight halo is tracked by an OnDone callback: any
			// asynchronous failure (a link giving out mid-run) surfaces
			// instead of silently stalling a ghost slot.
			track := func(req *rma.Request) {
				req.OnDone(func(err error) {
					if err != nil {
						log.Fatal(err)
					}
				})
			}
			if left >= 0 {
				track(push(get(first), left, total-2)) // left nb's right slot, parity 0
			}
			if right < ranks {
				track(push(get(last), right, 0)) // right nb's left slot, parity 0
			}
			waitHalos := func(threshold int) {
				for _, nb := range neighbors {
					if _, _, err := s.Select(rma.OnApplied(nb, int64(threshold))); err != nil {
						log.Fatal(err)
					}
				}
			}
			waitHalos(1) // seed halos must land before sweep 0 reads them

			for sweep := 0; sweep < sweeps; sweep++ {
				q := sweep % 2
				gL, gR := q, total-2+q // ghost slots this sweep reads
				snap()
				// The new boundary values depend only on data already
				// local — old interior plus this sweep's parity ghosts —
				// so compute and push them first, and let the halos fly
				// over the interior relaxation.
				newFirst := 0.5 * (old[gL] + old[first+1])
				newLast := 0.5 * (old[last-1] + old[gR])
				if me == ranks-1 {
					newLast = old[last] // fixed global right edge
				}
				if sweep < sweeps-1 { // the final sweep's halos have no reader
					if left >= 0 {
						// Left neighbour's right slot of parity 1-q.
						track(push(newFirst, left, total-2+(1-q)))
					}
					if right < ranks {
						// Right neighbour's left slot of parity 1-q.
						track(push(newLast, right, 1-q))
					}
				}
				// Interior cells need no ghosts at all: this is the work
				// the in-flight halos overlap.
				for i := first + 1; i < last; i++ {
					set(i, 0.5*(old[i-1]+old[i+1]))
				}
				set(first, newFirst)
				set(last, newLast)
				// The next sweep reads the parity 1-q ghosts, filled by
				// the neighbours' sweep-`sweep` pushes: wait for their
				// cumulative delivery counts to reach sweep+2 (the seed
				// plus one per sweep so far).
				if sweep < sweeps-1 {
					waitHalos(sweep + 2)
				}
			}
			// Drain outstanding remote completions before measuring.
			if err := s.Complete(neighbors...); err != nil {
				log.Fatal(err)
			}
		}

		// Gather the owned cells and the finish time at rank 0.
		own := make([]byte, perRank*8)
		copy(own, p.Mem().Snapshot(region.Offset+first*8, perRank*8))
		finish := comm.AllreduceInt64(runtime.OpMax, int64(p.Now()))
		parts := comm.Gather(0, own)
		if me == 0 {
			var all []byte
			for _, part := range parts {
				all = append(all, part...)
			}
			res.cells = all
			res.finish = finish
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
