// Stencil: a 1-D Jacobi iteration with RMA halo exchange — the PGAS-style
// workload the paper's introduction motivates (Section II: PGAS languages
// and libraries rely on efficient RMA for exactly this pattern).
//
// The global domain of N float64 cells is block-distributed over the
// ranks. Each rank exposes its block plus two ghost cells as a target_mem
// object. Every iteration, each rank *pushes* its boundary cells into its
// neighbours' ghost slots with nonblocking notified puts carrying float64
// datatypes, issues one RMA_complete toward each neighbour (answered from
// the delivery counters the notifications maintain — no probe traffic),
// barriers, and relaxes its interior. After the configured number of
// sweeps, rank 0 gathers the residual.
//
// The put-based halo exchange needs no receive calls and no window epochs
// on the target side — the asynchronous advantage the paper opens with.
//
// Run with:
//
//	go run ./examples/stencil
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

const (
	ranks   = 4
	perRank = 64  // cells per rank
	sweeps  = 200 // Jacobi iterations
)

// cell layout in each rank's exposed region: [ghostL | cells... | ghostR]
const (
	ghostL = 0
	first  = 1
	ghostR = perRank + 1
	total  = perRank + 2
)

func main() {
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		comm := p.Comm()
		me := p.Rank()

		// Expose the block (with ghosts) and exchange descriptors: the
		// strawman has no collective window creation, so the application
		// (here via the ExposeCollective convenience) does it.
		tms, region, err := s.ExposeCollective(total * 8)
		if err != nil {
			log.Fatal(err)
		}

		// Initial condition: a hot boundary at the global left edge.
		set := func(idx int, v float64) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			p.WriteLocal(region, idx*8, b[:])
		}
		get := func(idx int) float64 {
			b := p.ReadLocal(region, idx*8, 8)
			return math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
		for i := 0; i < total; i++ {
			set(i, 0)
		}
		if me == 0 {
			set(ghostL, 100) // fixed Dirichlet boundary
		}

		left, right := me-1, me+1
		scratch := p.Alloc(8)
		pushBoundary := func(cellIdx int, neighbor int, ghostIdx int) *rma.Request {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(get(cellIdx)))
			p.WriteLocal(scratch, 0, b[:])
			req, err := s.PutNotify(scratch, 1, rma.Float64, tms[neighbor], ghostIdx*8)
			if err != nil {
				log.Fatal(err)
			}
			return req
		}

		var neighbors []int
		if left >= 0 {
			neighbors = append(neighbors, left)
		}
		if right < ranks {
			neighbors = append(neighbors, right)
		}

		old := make([]float64, total)
		for sweep := 0; sweep < sweeps; sweep++ {
			// Push boundary cells into the neighbours' ghost slots.
			var reqs []*rma.Request
			if left >= 0 {
				reqs = append(reqs, pushBoundary(first, left, ghostR))
			}
			if right < ranks {
				reqs = append(reqs, pushBoundary(perRank, right, ghostL))
			}
			for _, req := range reqs {
				// Await = Wait + Err: local completion plus any failure the
				// target discovered asynchronously.
				if err := req.Await(); err != nil {
					log.Fatal(err)
				}
			}
			// Remote completion of the pushes — one variadic Complete covers
			// both neighbours — then a barrier so every ghost everywhere is
			// fresh before anyone relaxes.
			if err := s.Complete(neighbors...); err != nil {
				log.Fatal(err)
			}
			comm.Barrier()

			for i := 0; i < total; i++ {
				old[i] = get(i)
			}
			lo, hi := first, ghostR-1
			if me == ranks-1 {
				hi-- // global right edge is fixed at 0
			}
			for i := lo; i <= hi; i++ {
				set(i, 0.5*(old[i-1]+old[i+1]))
			}
			if me == 0 {
				set(ghostL, 100)
			}
			comm.Barrier()
		}

		// Residual: sum of |Δ| per rank, reduced at rank 0.
		var local float64
		for i := first; i < ghostR; i++ {
			local += math.Abs(get(i) - old[i])
		}
		sum := comm.AllreduceInt64(runtime.OpSum, int64(local*1e9))
		if me == 0 {
			fmt.Printf("stencil: %d ranks x %d cells, %d sweeps\n", ranks, perRank, sweeps)
			fmt.Printf("residual sum |delta| = %.3g\n", float64(sum)/1e9)
			fmt.Printf("left-edge temperatures: ")
			for i := first; i < first+8; i++ {
				fmt.Printf("%.2f ", get(i))
			}
			fmt.Println()
			fmt.Printf("virtual time at finish: %v\n", p.Now())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
