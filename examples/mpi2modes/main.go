// MPI-2 synchronization modes: Figure 1 of the paper, runnable.
//
// The paper's Figure 1 shows the three synchronization methods of MPI-2
// one-sided communication. This example executes all three against the
// mpi2rma baseline — (a) fence, (b) post-start-complete-wait, (c)
// lock-unlock — and then performs the same data movement with a single
// strawman blocking put, printing the virtual-time cost of each so the
// "synchronization methods add overhead to the basic data transfer"
// observation (Section I) is visible.
//
// Run with:
//
//	go run ./examples/mpi2modes
package main

import (
	"fmt"
	"log"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/mpi2rma"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/vtime"
)

const payload = 256

func main() {
	// Three ranks, as in Figure 1b: ranks 1 and 2 access rank 0.
	world := runtime.NewWorld(runtime.Config{Ranks: 3})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		r2 := mpi2rma.Attach(p, mpi2rma.Options{})
		rma := r2.Engine()
		comm := p.Comm()
		me := p.Rank()
		region := p.Alloc(payload)
		win, err := r2.WinCreate(comm, region)
		if err != nil {
			log.Fatal(err)
		}
		src := p.Alloc(payload)
		report := func(mode string, start vtime.Time) {
			if me == 1 {
				fmt.Printf("%-28s %8d ns of virtual time\n", mode, p.Now()-start)
			}
		}

		// --- Figure 1a: fence synchronization -------------------------
		comm.Barrier()
		start := p.Now()
		if err := win.Fence(); err != nil {
			log.Fatal(err)
		}
		if me != 0 {
			if err := win.Put(src, payload, datatype.Byte, 0, 0, payload, datatype.Byte); err != nil {
				log.Fatal(err)
			}
		}
		if err := win.Fence(); err != nil {
			log.Fatal(err)
		}
		report("fence epoch", start)

		// --- Figure 1b: post-start-complete-wait ----------------------
		comm.Barrier()
		start = p.Now()
		if me == 0 {
			if err := win.Post([]int{1, 2}); err != nil {
				log.Fatal(err)
			}
			if err := win.Wait(); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				log.Fatal(err)
			}
			if err := win.Put(src, payload, datatype.Byte, 0, 0, payload, datatype.Byte); err != nil {
				log.Fatal(err)
			}
			if err := win.Complete(); err != nil {
				log.Fatal(err)
			}
		}
		report("post-start-complete-wait", start)

		// --- Figure 1c: lock-unlock (passive target) ------------------
		comm.Barrier()
		start = p.Now()
		if me != 0 {
			if err := win.Lock(mpi2rma.LockShared, 0); err != nil {
				log.Fatal(err)
			}
			if err := win.Put(src, payload, datatype.Byte, 0, 0, payload, datatype.Byte); err != nil {
				log.Fatal(err)
			}
			if err := win.Unlock(0); err != nil {
				log.Fatal(err)
			}
		}
		comm.Barrier()
		report("lock-unlock", start)

		// --- The strawman alternative: one blocking put ----------------
		// Same bytes moved, no epochs anywhere; Complete only when the
		// origin actually needs remote completion.
		tm := rma.Expose(region)
		descs := comm.Gather(0, tm.Encode())
		var flat []byte
		if me == 0 {
			for _, d := range descs {
				flat = append(flat, d...)
			}
		}
		flat = comm.Bcast(0, flat)
		tm0, err := core.DecodeTargetMem(flat[:len(flat)/3])
		if err != nil {
			log.Fatal(err)
		}
		comm.Barrier()
		start = p.Now()
		if me != 0 {
			if _, err := rma.Put(src, payload, datatype.Byte, tm0, 0, payload, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
				log.Fatal(err)
			}
		}
		report("strawman blocking put", start)
		comm.Barrier()
		start = p.Now()
		if me != 0 {
			if _, err := rma.Put(src, payload, datatype.Byte, tm0, 0, payload, datatype.Byte, 0, comm, core.AttrBlocking); err != nil {
				log.Fatal(err)
			}
			if err := rma.Complete(comm, 0); err != nil {
				log.Fatal(err)
			}
		}
		report("strawman put + complete", start)

		comm.Barrier()
		if err := win.Free(); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
