// kvservice: the RMA-backed data-structure service layer end to end
// (DESIGN.md §15) — a key/value front-end and a task queue served
// entirely by one-sided operations.
//
// Three server ranks expose the stripes of one global open-addressing
// hash table and then DO NOTHING — after dht.Open returns they sit at
// the final barrier while their NICs serve every request. Three client
// ranks run a closed loop against the table (put, get, compare-and-swap
// on a shared counter key) and hand work to each other through the
// global MPMC queue: rank 3 and 4 produce task descriptors, rank 5
// consumes and "executes" them. Every byte of coordination — bucket
// locks, sequence words, tickets — lives in exposed memory and moves by
// Put/Get/FetchAdd/CompareSwap.
//
// Run with:
//
//	go run ./examples/kvservice
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"mpi3rma/dht"
	"mpi3rma/dht/queue"
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

const (
	servers = 3
	clients = 3
	ranks   = servers + clients

	keys     = 96   // preloaded key space
	requests = 400  // closed-loop requests per client
	tasks    = 50   // queue tasks per producer
	counter  = keys // dedicated CAS counter key, outside the put/get range
)

func value(key, version int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(key)*2_654_435_761+uint64(version))
	return b
}

func main() {
	world := runtime.NewWorld(runtime.Config{Ranks: ranks, Seed: 42})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		m, err := dht.Open(s,
			dht.WithServers(servers),
			dht.WithBuckets(64),
			dht.WithValueSize(8))
		if err != nil {
			panic(err)
		}
		q, err := queue.New(s, 0, 8, 16)
		if err != nil {
			panic(err)
		}
		me := p.Rank()

		// Servers are done: their stripes are exposed, their NICs serve.
		if me < servers {
			p.Barrier() // clients preloading
			p.Barrier() // clients storming
			return
		}

		// Preload: each client owns a third of the key space.
		c := me - servers
		for k := c; k < keys; k += clients {
			if err := m.Put(int64(k), value(k, 0)); err != nil {
				panic(err)
			}
		}
		if c == 0 {
			if err := m.Put(counter, make([]byte, 8)); err != nil {
				panic(err)
			}
		}
		p.Barrier()

		// Closed loop: read-mostly traffic plus a contended CAS counter —
		// every client increments it via read-modify-write until it has
		// won `requests/10` races.
		start := p.Now()
		wins := 0
		for i := 0; i < requests; i++ {
			k := int64((c*31 + i*7) % keys)
			switch {
			case i%10 == 9 && wins < requests/10:
				for {
					cur, ok, err := m.Get(counter)
					if err != nil {
						panic(err)
					}
					if !ok {
						panic("counter key vanished")
					}
					n := binary.LittleEndian.Uint64(cur)
					next := make([]byte, 8)
					binary.LittleEndian.PutUint64(next, n+1)
					swapped, err := m.CAS(counter, cur, next)
					if err != nil {
						panic(err)
					}
					if swapped {
						wins++
						break
					}
				}
			case i%3 == 0:
				if err := m.Put(k, value(int(k), i)); err != nil {
					panic(err)
				}
			default:
				if _, _, err := m.Get(k); err != nil {
					panic(err)
				}
			}
		}

		// Task handoff: 3 and 4 produce, 5 consumes and checks.
		task := make([]byte, 16)
		switch me {
		case servers, servers + 1:
			for i := 0; i < tasks; i++ {
				binary.LittleEndian.PutUint64(task, uint64(me))
				binary.LittleEndian.PutUint64(task[8:], uint64(i))
				if err := q.Enqueue(task); err != nil {
					panic(err)
				}
			}
		case servers + 2:
			got := map[uint64]int{}
			for i := 0; i < 2*tasks; i++ {
				t, err := q.Dequeue()
				if err != nil {
					panic(err)
				}
				got[binary.LittleEndian.Uint64(t)]++
			}
			fmt.Printf("rank %d drained %d tasks from producers %v\n",
				me, 2*tasks, []int{servers, servers + 1})
		}

		elapsed := p.Now() - start
		st := m.Stats()
		lat := m.Latency()
		fmt.Printf("rank %d: %d requests in %.2fms vtime (%d CAS wins), p50<=%dns p99<=%dns, %d lock retries\n",
			me, requests, float64(elapsed)/1e6, wins, lat.Quantile(0.5), lat.Quantile(0.99), st.LockRetries)
		p.Barrier()

		// Read-your-writes proof across the stripes, counter included.
		cur, ok, err := m.Get(counter)
		if err != nil || !ok {
			panic(fmt.Sprintf("counter readback: ok=%v err=%v", ok, err))
		}
		if me == servers {
			want := uint64(clients * (requests / 10))
			got := binary.LittleEndian.Uint64(cur)
			fmt.Printf("shared counter: %d CAS increments (want %d) — %v\n", got, want, got == want)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
