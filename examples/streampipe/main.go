// Streampipe: a producer/consumer byte stream over one-sided RMA — the
// fully event-driven shape the completion-queue surface enables.
//
// Rank 0 (the producer) streams fixed-size records into a circular ring
// of slots exposed by rank 1 (the consumer) with notified puts. Rank 1
// discovers arrivals with Select(OnApplied) — no receives, no polling
// loops — validates each record, and grants the producer fresh ring
// space with credit messages: a one-sided put of its cumulative consumed
// count into a cell the producer exposes, sent every few records. The
// producer stalls on Select(OnApplied) only when the credit window is
// exhausted, and tracks every in-flight record with an OnDone callback
// so asynchronous failures (and the high-water in-flight mark) are
// observed without ever blocking.
//
// Flow control invariant: record i is written into slot i%slots only
// after the consumer's credit covers i-slots, i.e. the consumer has read
// that slot's previous occupant. Credits every `creditEvery` records with
// creditEvery <= slots-1 keep the pipe deadlock-free.
//
// Run with:
//
//	go run ./examples/streampipe
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync/atomic"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

const (
	records     = 64 // records streamed end to end
	recBytes    = 32 // bytes per record (8-byte seq header + payload)
	slots       = 8  // ring capacity in records
	creditEvery = 4  // consumer grants credit every this many records
)

func main() {
	world := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer world.Close()

	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithEvents(2*records))
		if p.Rank() == 0 {
			produce(p, s)
		} else {
			consume(p, s)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func produce(p *runtime.Proc, s *rma.Session) {
	// The producer exposes the 8-byte credit cell the consumer writes its
	// cumulative consumed count into, and receives the ring descriptor.
	creditTM, creditRegion := s.Expose(8)
	p.Send(1, 1, creditTM.Encode())
	enc, _ := p.Recv(1, 0)
	ring, err := rma.DecodeTargetMem(enc)
	if err != nil {
		log.Fatal(err)
	}

	var inflight, maxInflight atomic.Int64
	track := func(req *rma.Request) {
		if n := inflight.Add(1); n > maxInflight.Load() {
			maxInflight.Store(n)
		}
		req.OnDone(func(err error) {
			if err != nil {
				log.Fatal(err)
			}
			inflight.Add(-1)
		})
	}

	buf := p.Alloc(recBytes)
	payload := make([]byte, recBytes)
	credits := int64(slots) // ring starts empty: slots records of headroom
	creditMsgs := int64(0)

	for i := 0; i < records; i++ {
		// Out of window: wait for the next credit message — one Select,
		// no spinning — then read the granted count from the local cell.
		for int64(i) >= credits {
			_, ev, err := s.Select(rma.OnApplied(1, creditMsgs+1))
			if err != nil {
				log.Fatal(err)
			}
			creditMsgs = ev.Count
			consumed := int64(binary.LittleEndian.Uint64(p.ReadLocal(creditRegion, 0, 8)))
			credits = consumed + slots
		}
		binary.LittleEndian.PutUint64(payload, uint64(i))
		for j := 8; j < recBytes; j++ {
			payload[j] = byte(i)
		}
		p.WriteLocal(buf, 0, payload)
		// Ordering matters: the consumer waits on the cumulative applied
		// count, and count i+1 must mean records 0..i landed — not any
		// i+1 of the in-flight window.
		req, err := s.PutNotify(buf, recBytes, rma.Byte, ring, (i%slots)*recBytes,
			rma.WithRemoteComplete(), rma.WithOrdering())
		if err != nil {
			log.Fatal(err)
		}
		track(req)
	}
	// Drain: remote-complete everything still flying, then report.
	if err := s.Complete(1); err != nil {
		log.Fatal(err)
	}
	p.Barrier()
	fmt.Printf("streampipe: %d records x %d B through a %d-slot ring\n", records, recBytes, slots)
	fmt.Printf("producer: stalled through %d credit messages, max %d records in flight\n", creditMsgs, maxInflight.Load())
	fmt.Printf("virtual time at finish: %v\n", p.Now())
}

func consume(p *runtime.Proc, s *rma.Session) {
	// The consumer exposes the ring and receives the credit-cell
	// descriptor.
	ringTM, ringRegion := s.Expose(slots * recBytes)
	p.Send(0, 0, ringTM.Encode())
	enc, _ := p.Recv(0, 1)
	creditTM, err := rma.DecodeTargetMem(enc)
	if err != nil {
		log.Fatal(err)
	}

	credit := p.Alloc(8)
	var checksum uint64
	for i := 0; i < records; i++ {
		// Wait until record i has landed: the producer's cumulative
		// notified-put count reaching i+1 is exactly that.
		if _, _, err := s.Select(rma.OnApplied(0, int64(i+1))); err != nil {
			log.Fatal(err)
		}
		rec := p.ReadLocal(ringRegion, (i%slots)*recBytes, recBytes)
		if seq := binary.LittleEndian.Uint64(rec); seq != uint64(i) {
			log.Fatalf("record %d carries seq %d — ring overwritten past its credit", i, seq)
		}
		for j := 8; j < recBytes; j++ {
			if rec[j] != byte(i) {
				log.Fatalf("record %d corrupt at byte %d", i, j)
			}
			checksum += uint64(rec[j])
		}
		// Grant ring space back: cumulative consumed count, one-sided,
		// every creditEvery records and at the end.
		if consumed := i + 1; consumed%creditEvery == 0 || consumed == records {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(consumed))
			p.WriteLocal(credit, 0, b[:])
			// Ordered so a newer (larger) grant is never overwritten by
			// an older one still in flight.
			req, err := s.PutNotify(credit, 8, rma.Byte, creditTM, 0, rma.WithOrdering())
			if err != nil {
				log.Fatal(err)
			}
			req.OnDone(func(err error) {
				if err != nil {
					log.Fatal(err)
				}
			})
		}
	}
	if err := s.Complete(0); err != nil {
		log.Fatal(err)
	}
	var want uint64
	for i := 0; i < records; i++ {
		want += uint64(recBytes-8) * uint64(byte(i))
	}
	if checksum != want {
		log.Fatalf("stream checksum %d, want %d", checksum, want)
	}
	p.Barrier()
	fmt.Printf("consumer: %d records validated, checksum ok\n", records)
}
